"""Distributed plan execution over the DHT.

Implements the two query-processing strategies of Section 3.2 plus the
optimizer's two bandwidth-saving join rewrites
(:mod:`repro.pier.optimizer`):

* **Distributed join** (Figure 2): the node hosting the first keyword
  rehashes its matching Inverted tuples to the node hosting the next
  keyword, which runs a symmetric hash join (SHJ) against its local
  posting list; survivors flow down the keyword chain. The last site
  streams matching fileIDs to the query node, which fetches Item tuples.

* **InvertedCache** (Figure 3): the query is routed to the single node
  hosting the first keyword's InvertedCache list; remaining terms are
  resolved locally with substring filters over the cached full text, so no
  posting-list entries cross the network.

* **Semi-join**: the same keyword chain, but sites ship packed fileID
  digests (~20 B per entry) instead of framed posting tuples (~531 B);
  each site intersects the arriving digest exactly with its local list.
  Payloads are fetched second — the final Item fetch is the only place
  full tuples travel.

* **Bloom join**: the rarest posting list ships as a Bloom filter; the
  next site forwards digests of only the *probable* matches, downstream
  sites intersect exactly, and the surviving candidates return to the
  filter site for exact verification against the rarest list. False
  positives can therefore inflate digest bytes but never the answer set.

All shipping is charged to the DHT's bandwidth meter; per-query statistics
(entries shipped, messages, bytes, critical-path hops) are returned in a
:class:`~repro.pier.query.QueryStats`.

Per the PIER design, "with the exception of query answers, all messages
are sent via the DHT routing layer": rehash traffic pays multi-hop DHT
routing, while final answers return directly to the query node in one hop.
"""

from __future__ import annotations

from repro.common.bloom import bloom_for_keys
from repro.common.units import CostModel
from repro.dht.network import DhtNetwork
from repro.pier.catalog import Catalog
from repro.pier.dataflow import (
    DataflowConfig,
    DataflowExecutor,
    fetch_items_charged,
    route_hops,
)
from repro.pier.operators import (
    NUM_SPILL_PARTITIONS,
    BloomProbe,
    Scan,
    SpillSink,
    SubstringFilter,
    SymmetricHashJoin,
)
from repro.pier.query import (
    DistributedPlan,
    JoinStrategy,
    QueryStats,
    SpillStats,
    spill_stats_from_join,
)
from repro.pier.schema import Row


class DistributedExecutor:
    """Executes distributed keyword plans and accounts for every message.

    Two runtimes sit behind :meth:`execute`:

    * ``mode="atomic"`` (the compatibility default here): each join stage
      materialises fully before the next starts, with lump-sum accounting.
    * ``mode="pipelined"``: the plan runs as a streaming exchange dataflow
      (:mod:`repro.pier.dataflow`) — tuple batches ship site-to-site as
      events in virtual time, answers stream back while upstream batches
      are in flight, and the same result set comes back with batch-level
      accounting. The event-driven hybrid engine uses this runtime by
      default.

    With ``store_temp_tuples`` set, the intermediate join state created at
    each site is also written into that site's DHT store under a per-query
    temporary key — PIER "stores all temporary tuples generated during
    query processing in the DHT", which lets a restarted or concurrent
    operator re-read them. ``release_temp_tuples`` drops them when the
    query completes; a plan that *fails* mid-chain releases the tuples it
    created on the way out, so aborted queries never leak temp state.
    """

    def __init__(
        self,
        network: DhtNetwork,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        store_temp_tuples: bool = False,
        mode: str = "atomic",
        dataflow_config: DataflowConfig | None = None,
        memory_budget: int | None = None,
        spill_partitions: int = NUM_SPILL_PARTITIONS,
        spill_policy: str = "partitioned",
        rng=None,
        tracer=None,
        metrics=None,
    ):
        if mode not in ("atomic", "pipelined"):
            raise ValueError(f"unknown execution mode {mode!r}")
        if store_temp_tuples and mode == "pipelined":
            # The streaming runtime persists join state through its
            # memory-budget spill sink (DataflowConfig.memory_budget),
            # not per-stage stashing; silently ignoring the flag would
            # break the temp-tuple contract without any error.
            raise ValueError(
                "store_temp_tuples is an atomic-mode feature; pipelined "
                "executions persist join state via "
                "DataflowConfig(memory_budget=...) spilling instead"
            )
        if memory_budget is not None and mode == "pipelined":
            # Same contract: the streaming runtime owns its own budget
            # knob, and a silently dropped budget would look unbounded.
            raise ValueError(
                "memory_budget on the executor is an atomic-mode feature; "
                "pipelined executions budget their joins via "
                "DataflowConfig(memory_budget=...) instead"
            )
        self.network = network
        self.catalog = catalog
        self.cost_model = cost_model or network.cost_model
        self.store_temp_tuples = store_temp_tuples
        #: per-join *row* budget (not bytes) for atomic-mode SHJ stages
        self.memory_budget = memory_budget
        self.spill_partitions = spill_partitions
        self.spill_policy = spill_policy
        self.mode = mode
        self._query_counter = 0
        self._temp_keys: list[tuple[int, int]] = []  # (node, ring key)
        #: observability hooks (:mod:`repro.obs`), None when disabled
        self.tracer = tracer
        self.metrics = metrics
        self._span = None  # root span of the query currently executing
        self._dataflow: DataflowExecutor | None = None
        if mode == "pipelined":
            self._dataflow = DataflowExecutor(
                network,
                catalog,
                cost_model=self.cost_model,
                config=dataflow_config,
                rng=rng,
                tracer=tracer,
                metrics=metrics,
            )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: DistributedPlan,
        fetch_items: bool = True,
        trace_parent=None,
    ) -> tuple[list[Row], QueryStats]:
        """Run ``plan``; returns (result rows, per-query statistics).

        Result rows are Item tuples when ``fetch_items`` is set, otherwise
        the surviving posting entries (fileID rows). ``trace_parent``
        nests the query's spans under a caller span when tracing is on.
        """
        if self._dataflow is not None:
            return self._dataflow.execute(
                plan, fetch_items=fetch_items, trace_parent=trace_parent
            )
        self._query_counter += 1
        first_temp_key = len(self._temp_keys)
        if self.tracer is not None:
            # The atomic runtime is a synchronous lump: its spans exist
            # for structure and attributes; every timestamp is "now".
            self._span = self.tracer.begin(
                "pier.atomic",
                parent=trace_parent,
                query_id=self._query_counter,
                strategy=plan.strategy.name,
                keywords=list(plan.keywords),
            )
        try:
            if plan.strategy is JoinStrategy.INVERTED_CACHE:
                rows, stats = self._execute_inverted_cache(plan, fetch_items)
            elif len(plan.stages) > 1 and plan.strategy is JoinStrategy.SEMI_JOIN:
                rows, stats = self._execute_semi_join(plan, fetch_items)
            elif len(plan.stages) > 1 and plan.strategy is JoinStrategy.BLOOM_JOIN:
                rows, stats = self._execute_bloom_join(plan, fetch_items)
            else:
                # Single-stage semi/Bloom plans degenerate to the
                # distributed join (nothing to intersect, nothing ships).
                rows, stats = self._execute_distributed_join(plan, fetch_items)
        except BaseException as error:
            # A mid-chain failure (e.g. a DhtError from routing) must not
            # orphan the temp tuples this query already stashed.
            self._release_temp_range(first_temp_key)
            if self._span is not None:
                self._span.finish(error=type(error).__name__)
                self._span = None
            if self.metrics is not None:
                self.metrics.counter("executor.failures").add(1)
            raise
        if self._span is not None:
            self._span.finish(
                bytes=stats.bytes, messages=stats.messages, results=stats.results
            )
            self._span = None
        if self.metrics is not None:
            self.metrics.counter("executor.queries").add(1)
            self.metrics.counter(
                "executor.strategy", labels={"strategy": plan.strategy.name}
            ).add(1)
        return rows, stats

    # ------------------------------------------------------------------
    # Temporary tuple management
    # ------------------------------------------------------------------

    def _stash_temp(self, site: int, stage_index: int, rows: list[Row]) -> None:
        """Store a stage's intermediate tuples in the site's DHT store."""
        if not self.store_temp_tuples or not rows:
            return
        from repro.pier.dataflow import temp_ring_key

        key = temp_ring_key(self._query_counter, stage_index)
        for position, row in enumerate(rows):
            self.network.put_local(
                site, key, dict(row), identity=(position, row.get("fileID"))
            )
        self._temp_keys.append((site, key))

    def temp_tuples_at(self, site: int, stage_index: int, query_id: int | None = None) -> list[Row]:
        """Read back a stage's temporary tuples (for tests/recovery)."""
        from repro.pier.dataflow import temp_ring_key

        query = query_id if query_id is not None else self._query_counter
        key = temp_ring_key(query, stage_index)
        return self.network.get_local(site, key)

    def release_temp_tuples(self) -> int:
        """Drop every temporary tuple this executor created; returns count."""
        return self._release_temp_range(0)

    def _release_temp_range(self, start: int) -> int:
        """Drop temp tuples stashed at or after ``start``; returns count."""
        removed = 0
        for site, key in self._temp_keys[start:]:
            removed += self.network.remove_local(site, key)
        del self._temp_keys[start:]
        return removed

    # ------------------------------------------------------------------
    # Figure 2: distributed symmetric hash join
    # ------------------------------------------------------------------

    def _execute_distributed_join(
        self, plan: DistributedPlan, fetch_items: bool
    ) -> tuple[list[Row], QueryStats]:
        stats = QueryStats(strategy=plan.strategy, keywords=plan.keywords)
        inverted = self.catalog.table("Inverted")

        # 1. Disseminate the query plan to every participating site.
        stats_hops = self._disseminate(plan, stats)
        stats.chain_hops = stats_hops

        # 2. Walk the keyword chain, rehashing survivors site to site.
        first = plan.stages[0]
        current = inverted.fetch_local(first.site, first.keyword)
        stats.per_stage_entries.append(len(current))
        previous_site = first.site
        for stage_index, stage in enumerate(plan.stages[1:], start=1):
            local = inverted.fetch_local(stage.site, stage.keyword)
            stats.per_stage_entries.append(len(local))
            current = self._rehash_and_join(
                current, local, previous_site, stage.site, stats
            )
            self._stash_temp(stage.site, stage_index, current)
            previous_site = stage.site
            if not current:
                break

        # 3. Stream matching fileIDs from the last site to the query node.
        #    Query answers go direct (one hop), not through DHT routing.
        self._charge_answer(stats, len(current))
        stats.critical_path_hops = stats_hops + 1

        rows: list[Row] = current
        if fetch_items:
            rows = self._fetch_items(current, plan.query_node, stats)
        stats.results = len(rows)
        return rows, stats

    def _rehash_and_join(
        self,
        shipped: list[Row],
        local: list[Row],
        source_site: int,
        target_site: int,
        stats: QueryStats,
    ) -> list[Row]:
        """Ship ``shipped`` to ``target_site`` and SHJ against ``local``."""
        hops = self._route_hops(source_site, target_site)
        per_tuple = self.cost_model.rehash_tuple_bytes()
        total_bytes = self.cost_model.routed_bytes(len(shipped) * per_tuple, hops)
        self._charge(stats, "pier.rehash", max(1, hops), total_bytes)
        stats.posting_entries_shipped += len(shipped)

        budget = self.memory_budget
        join = SymmetricHashJoin(
            Scan(shipped),
            Scan(local),
            column="fileID",
            memory_budget=budget,
            spill_sink=(
                SpillSink("fileID", row_bytes=self.cost_model.spill_tuple_bytes())
                if budget
                else None
            ),
            num_partitions=self.spill_partitions,
            spill_policy=self.spill_policy,
        )
        merged = join.rows()
        if budget is not None:
            if stats.spill is None:
                stats.spill = SpillStats()
            stats.spill.merge(spill_stats_from_join(join))
        # Keep one surviving row per fileID for the next stage.
        survivors: dict[object, Row] = {}
        for row in merged:
            survivors.setdefault(row["fileID"], {"fileID": row["fileID"]})
        if self._span is not None:
            self._span.child(
                "stage.join",
                site=target_site,
                shipped=len(shipped),
                build_rows=len(local),
                survivors=len(survivors),
                hops=hops,
            ).finish()
        return list(survivors.values())

    # ------------------------------------------------------------------
    # Optimizer rewrites: semi-join and Bloom join
    # ------------------------------------------------------------------

    def _execute_semi_join(
        self, plan: DistributedPlan, fetch_items: bool
    ) -> tuple[list[Row], QueryStats]:
        """Ship packed key digests down the chain; intersect exactly."""
        stats = QueryStats(strategy=plan.strategy, keywords=plan.keywords)
        inverted = self.catalog.table("Inverted")
        stats.chain_hops = self._disseminate(plan, stats)

        first = plan.stages[0]
        rows = inverted.fetch_local(first.site, first.keyword)
        stats.per_stage_entries.append(len(rows))
        current = list(dict.fromkeys(row["fileID"] for row in rows))
        previous_site = first.site
        for stage_index, stage in enumerate(plan.stages[1:], start=1):
            hops = self._route_hops(previous_site, stage.site)
            self._charge_digest(stats, "pier.semijoin", len(current), hops)
            local = inverted.fetch_local(stage.site, stage.keyword)
            stats.per_stage_entries.append(len(local))
            local_keys = {row["fileID"] for row in local}
            shipped = len(current)
            current = [key for key in current if key in local_keys]
            if self._span is not None:
                self._span.child(
                    "stage.semijoin",
                    site=stage.site,
                    shipped=shipped,
                    build_rows=len(local),
                    survivors=len(current),
                    hops=hops,
                ).finish()
            self._stash_temp(
                stage.site, stage_index, [{"fileID": key} for key in current]
            )
            previous_site = stage.site
            if not current:
                break

        self._charge_answer(stats, len(current))
        stats.critical_path_hops = stats.chain_hops + 1
        result: list[Row] = [{"fileID": key} for key in current]
        if fetch_items:
            result = self._fetch_items(result, plan.query_node, stats)
        stats.results = len(result)
        return result, stats

    def _execute_bloom_join(
        self, plan: DistributedPlan, fetch_items: bool
    ) -> tuple[list[Row], QueryStats]:
        """Ship a Bloom filter forward, probable-match digests after.

        The rarest posting list travels as a filter; the probe site keeps
        only keys that *probably* match, downstream sites intersect the
        candidate digest exactly, and survivors return to the filter site
        for exact verification — false positives add digest bytes, never
        answers.
        """
        stats = QueryStats(strategy=plan.strategy, keywords=plan.keywords)
        inverted = self.catalog.table("Inverted")
        stats.chain_hops = self._disseminate(plan, stats)

        first = plan.stages[0]
        rows = inverted.fetch_local(first.site, first.keyword)
        stats.per_stage_entries.append(len(rows))
        rare_keys = dict.fromkeys(row["fileID"] for row in rows)
        bloom = bloom_for_keys(list(rare_keys), plan.bloom_fp_rate)

        # Filter leg: the whole rarest list, compressed.
        second = plan.stages[1]
        hops = self._route_hops(first.site, second.site)
        self._charge(
            stats,
            "pier.bloom.filter",
            max(1, hops),
            self.cost_model.routed_bytes(bloom.size_bytes, hops),
        )
        stats.filter_bytes += bloom.size_bytes

        # Probe site: probable matches only (superset of the true ones).
        local = inverted.fetch_local(second.site, second.keyword)
        stats.per_stage_entries.append(len(local))
        probe = BloomProbe(Scan(local), column="fileID", bloom=bloom)
        candidates = list(dict.fromkeys(row["fileID"] for row in probe))
        if self._span is not None:
            self._span.child(
                "stage.bloom_probe",
                site=second.site,
                rows=len(local),
                candidates=len(candidates),
                filter_bytes=bloom.size_bytes,
            ).finish()
        self._stash_temp(second.site, 1, [{"fileID": key} for key in candidates])
        previous_site = second.site

        # Downstream sites intersect the candidate digest exactly.
        for stage_index, stage in enumerate(plan.stages[2:], start=2):
            if not candidates:
                break
            hops = self._route_hops(previous_site, stage.site)
            self._charge_digest(stats, "pier.bloom.digest", len(candidates), hops)
            local = inverted.fetch_local(stage.site, stage.keyword)
            stats.per_stage_entries.append(len(local))
            local_keys = {row["fileID"] for row in local}
            shipped = len(candidates)
            candidates = [key for key in candidates if key in local_keys]
            if self._span is not None:
                self._span.child(
                    "stage.bloom_digest",
                    site=stage.site,
                    shipped=shipped,
                    build_rows=len(local),
                    survivors=len(candidates),
                    hops=hops,
                ).finish()
            self._stash_temp(
                stage.site, stage_index, [{"fileID": key} for key in candidates]
            )
            previous_site = stage.site

        # Return leg: exact verification against the rarest list removes
        # every false positive the filter admitted.
        return_hops = 0
        if candidates:
            return_hops = self._route_hops(previous_site, first.site)
            self._charge_digest(
                stats, "pier.bloom.digest", len(candidates), return_hops
            )
            shipped = len(candidates)
            candidates = [key for key in candidates if key in rare_keys]
            if self._span is not None:
                self._span.child(
                    "stage.bloom_verify",
                    site=first.site,
                    shipped=shipped,
                    verified=len(candidates),
                    hops=return_hops,
                ).finish()

        self._charge_answer(stats, len(candidates))
        stats.critical_path_hops = stats.chain_hops + return_hops + 1
        result: list[Row] = [{"fileID": key} for key in candidates]
        if fetch_items:
            result = self._fetch_items(result, plan.query_node, stats)
        stats.results = len(result)
        return result, stats

    def _charge_digest(
        self, stats: QueryStats, category: str, entry_count: int, hops: int
    ) -> None:
        """Charge one packed-digest leg and count its entries."""
        self._charge(
            stats,
            category,
            max(1, hops),
            self.cost_model.routed_bytes(
                self.cost_model.digest_bytes(entry_count), hops
            ),
        )
        stats.posting_entries_shipped += entry_count

    def _charge_answer(self, stats: QueryStats, result_count: int) -> None:
        """Charge the direct answer message for ``result_count`` fileIDs."""
        stats.join_matches += result_count
        answer_bytes = self.cost_model.message_bytes(
            result_count * self.cost_model.tuple_bytes(self.cost_model.fileid_bytes)
        )
        self._charge(stats, "pier.answer", 1, answer_bytes)

    # ------------------------------------------------------------------
    # Figure 3: InvertedCache single-site filtering
    # ------------------------------------------------------------------

    def _execute_inverted_cache(
        self, plan: DistributedPlan, fetch_items: bool
    ) -> tuple[list[Row], QueryStats]:
        stats = QueryStats(strategy=plan.strategy, keywords=plan.keywords)
        cache = self.catalog.table("InvertedCache")

        # 1. Route the query (~850 B plan) to the single hosting site.
        first = plan.stages[0]
        hops = self._route_hops(plan.query_node, first.site)
        stats.chain_hops = hops
        plan_bytes = self.cost_model.routed_bytes(self.cost_model.query_plan_bytes, hops)
        self._charge(stats, "pier.query", max(1, hops), plan_bytes)

        # 2. Resolve remaining terms with local substring selections.
        rows = cache.fetch_local(first.site, first.keyword)
        stats.per_stage_entries.append(len(rows))
        operator = Scan(rows)
        for keyword in plan.keywords[1:]:
            operator = SubstringFilter(operator, column="fulltext", needle=keyword)
        matched = operator.rows()
        survivors: dict[object, Row] = {}
        for row in matched:
            survivors.setdefault(row["fileID"], {"fileID": row["fileID"]})
        current = list(survivors.values())
        if self._span is not None:
            self._span.child(
                "stage.inverted_cache",
                site=first.site,
                rows=len(rows),
                survivors=len(current),
                hops=hops,
            ).finish()

        # 3. Stream answers directly back to the query node.
        self._charge_answer(stats, len(current))
        stats.critical_path_hops = hops + 1

        result: list[Row] = current
        if fetch_items:
            result = self._fetch_items(current, plan.query_node, stats)
        stats.results = len(result)
        return result, stats

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------

    def _disseminate(self, plan: DistributedPlan, stats: QueryStats) -> int:
        """Send the plan to every site; returns sequential-chain hop count.

        The plan travels query node -> site1 -> site2 -> ... because each
        site must know where to rehash next; the hop count of that chain is
        the latency-critical path of dissemination.
        """
        chain_hops = 0
        previous = plan.query_node
        for stage in plan.stages:
            hops = self._route_hops(previous, stage.site)
            plan_bytes = self.cost_model.routed_bytes(
                self.cost_model.query_plan_bytes, hops
            )
            self._charge(stats, "pier.query", max(1, hops), plan_bytes)
            chain_hops += hops
            previous = stage.site
        return chain_hops

    def _fetch_items(self, fileid_rows: list[Row], query_node: int, stats: QueryStats) -> list[Row]:
        """Fetch Item tuples for surviving fileIDs (parallel gets).

        Accounting lives in :func:`repro.pier.dataflow.fetch_items_charged`,
        shared with the streaming runtime so both charge identically.
        """
        results, max_fetch_hops = fetch_items_charged(
            self.network,
            self.catalog,
            self.cost_model,
            [row["fileID"] for row in fileid_rows],
            query_node,
            lambda category, messages, byte_count: self._charge(
                stats, category, messages, byte_count
            ),
        )
        # Item fetches run in parallel; the slowest one bounds latency.
        stats.critical_path_hops += max_fetch_hops + 1 if fileid_rows else 0
        return results

    def _route_hops(self, origin: int, key_owner: int) -> int:
        """Overlay hops to route from ``origin`` to ``key_owner``'s id."""
        return route_hops(self.network, origin, key_owner)

    def _charge(self, stats: QueryStats, category: str, messages: int, byte_count: int) -> None:
        stats.messages += messages
        stats.bytes += byte_count
        self.network.transport.charge(category, messages, byte_count)
