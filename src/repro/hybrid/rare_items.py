"""Rare-item identification schemes (Section 5).

Each scheme assigns every distinct item a *rarity score* — its local
estimate of how rare the item is (lower = rarer). Publishing with a
threshold then means publishing all items whose score falls at or below
it; publishing with a *budget* (Figures 13-15's x-axis) means publishing
the fraction of items with the lowest scores.

Schemes:

* **Perfect** — oracle: score = true replica count. Upper bound.
* **Random** — score is random noise. Lower bound.
* **QRS** (Query Results Size) — score = smallest observed result-set
  size among queries that returned the item; items never seen in any
  result set are unscored and never published (the weakness the paper
  notes).
* **TF** (Term Frequency) — score = the item's minimum term frequency,
  over term statistics gathered from observed results traffic.
* **TPF** (Term Pair Frequency) — like TF but over adjacent ordered term
  pairs, which resists popular keywords appearing in rare items.
* **SAM** (Sampling) — score = a lower-bound replica count estimated by
  sampling a fraction of nodes. SAM(100%) equals Perfect and SAM(0%)
  degenerates to Random, exactly as Figure 15's legend indicates.
"""

from __future__ import annotations

import math
import random
from collections import Counter

from repro.common.rng import make_rng
from repro.piersearch.tokenizer import extract_keywords


class RareItemScheme:
    """Interface: map item filenames to rarity scores (lower = rarer)."""

    name = "abstract"

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        raise NotImplementedError

    def published_at_threshold(
        self, filenames: list[str], threshold: float
    ) -> set[str]:
        """Items whose rarity estimate is at or below ``threshold``."""
        scores = self.rarity_scores(filenames)
        return {name for name in filenames if scores.get(name, math.inf) <= threshold}


def published_for_budget(
    scores: dict[str, float],
    filenames: list[str],
    budget_fraction: float,
    rng: random.Random | int | None = None,
) -> set[str]:
    """Publish the ``budget_fraction`` of items with the lowest scores.

    Ties (very common: many schemes give integral scores) are broken
    randomly so budget curves are smooth, mirroring the paper's practice
    of tuning each scheme's threshold to hit a target publishing budget.
    Unscored items (score = inf) are only published if the budget exceeds
    the scored population.
    """
    if not 0.0 <= budget_fraction <= 1.0:
        raise ValueError(f"budget must be in [0,1], got {budget_fraction}")
    rng = make_rng(rng)
    count = int(round(budget_fraction * len(filenames)))
    jittered = sorted(
        filenames, key=lambda name: (scores.get(name, math.inf), rng.random())
    )
    return set(jittered[:count])


class PerfectScheme(RareItemScheme):
    """Oracle baseline: knows the true replica count of every item."""

    name = "Perfect"

    def __init__(self, replication: dict[str, int]):
        self.replication = replication

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        return {name: float(self.replication.get(name, 0)) for name in filenames}


class RandomScheme(RareItemScheme):
    """Lower-bound baseline: publishes items irrespective of rarity."""

    name = "Random"

    def __init__(self, rng: random.Random | int | None = None):
        self.rng = make_rng(rng)

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        return {name: self.rng.random() for name in filenames}


class QueryResultsSizeScheme(RareItemScheme):
    """QRS: cache elements of small result sets.

    Trained by observing (result-set size, filenames in the set) pairs
    from queries the node forwarded. The score of an item is the smallest
    result set it has appeared in; unseen items never get published.
    """

    name = "QRS"

    def __init__(self) -> None:
        self._best_size: dict[str, int] = {}

    def observe_result_set(self, filenames: list[str]) -> None:
        """Record one query's result set (list of matched filenames)."""
        size = len(filenames)
        for name in set(filenames):
            previous = self._best_size.get(name)
            if previous is None or size < previous:
                self._best_size[name] = size

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        return {
            name: float(self._best_size[name])
            for name in filenames
            if name in self._best_size
        }


class TermFrequencyScheme(RareItemScheme):
    """TF: an item is rare if any of its terms is rare.

    Term statistics come from filenames observed in results traffic —
    each observation is one result occurrence, so popular (highly
    replicated) items contribute proportionally more, as they would to a
    real ultrapeer watching ~30,000 results/hour.
    """

    name = "TF"

    def __init__(self) -> None:
        self.term_counts: Counter[str] = Counter()

    def observe_filename(self, filename: str, weight: int = 1) -> None:
        for term in extract_keywords(filename):
            self.term_counts[term] += weight

    def observe_corpus(self, replication: dict[str, int]) -> None:
        """Bulk-train from a replica distribution (filename -> count)."""
        for filename, replicas in replication.items():
            self.observe_filename(filename, weight=replicas)

    @property
    def distinct_terms(self) -> int:
        return len(self.term_counts)

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        scores: dict[str, float] = {}
        for name in filenames:
            keywords = extract_keywords(name)
            if not keywords:
                continue
            scores[name] = float(min(self.term_counts.get(term, 0) for term in keywords))
        return scores


class TermPairFrequencyScheme(RareItemScheme):
    """TPF: like TF but over ordered adjacent term pairs.

    Individual terms suffer popularity skew (a rare item may contain a
    popular keyword); adjacent pairs are far more selective. Only
    adjacent ordered pairs are kept, as the paper does, to bound memory.
    """

    name = "TPF"

    def __init__(self) -> None:
        self.pair_counts: Counter[tuple[str, str]] = Counter()

    def observe_filename(self, filename: str, weight: int = 1) -> None:
        keywords = extract_keywords(filename)
        for left, right in zip(keywords, keywords[1:]):
            self.pair_counts[(left, right)] += weight

    def observe_corpus(self, replication: dict[str, int]) -> None:
        for filename, replicas in replication.items():
            self.observe_filename(filename, weight=replicas)

    @property
    def distinct_pairs(self) -> int:
        return len(self.pair_counts)

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        scores: dict[str, float] = {}
        for name in filenames:
            keywords = extract_keywords(name)
            pairs = list(zip(keywords, keywords[1:]))
            if not pairs:
                # Single-term filenames have no pairs; fall back to unscored.
                continue
            scores[name] = float(min(self.pair_counts.get(pair, 0) for pair in pairs))
        return scores


class CompressedTermFrequencyScheme(RareItemScheme):
    """TF with Bloom-compressed term statistics (Section 6.3's suggestion).

    Instead of a full term -> count table, stores only a Bloom filter of
    the *frequent* terms (count above the compression threshold). An item
    is rare if any of its terms misses the filter. False positives make
    the scheme err toward "popular" (missing some rare items), never the
    other way; the memory footprint shrinks by an order of magnitude.

    Because the compressed statistic is binary, rarity scores are 0 (has
    an infrequent term) or 1 (all terms look frequent): budgeted
    publishing degrades gracefully to random *within* each class.
    """

    name = "TF-bloom"

    def __init__(self, frequency_threshold: int, false_positive_rate: float = 0.01):
        if frequency_threshold < 1:
            raise ValueError(
                f"frequency_threshold must be >= 1, got {frequency_threshold}"
            )
        self.frequency_threshold = frequency_threshold
        self.false_positive_rate = false_positive_rate
        self._exact = TermFrequencyScheme()
        self._bloom = None

    def observe_filename(self, filename: str, weight: int = 1) -> None:
        self._exact.observe_filename(filename, weight)
        self._bloom = None  # invalidate; rebuilt lazily

    def observe_corpus(self, replication: dict[str, int]) -> None:
        self._exact.observe_corpus(replication)
        self._bloom = None

    def _frequent_terms(self) -> list[str]:
        return [
            term
            for term, count in self._exact.term_counts.items()
            if count > self.frequency_threshold
        ]

    def compress(self):
        """Freeze the statistics into the Bloom filter; returns it."""
        from repro.common.bloom import BloomFilter

        frequent = self._frequent_terms()
        bloom = BloomFilter.with_capacity(
            max(1, len(frequent)), self.false_positive_rate
        )
        bloom.update(frequent)
        self._bloom = bloom
        return bloom

    @property
    def compressed_bytes(self) -> int:
        if self._bloom is None:
            self.compress()
        return self._bloom.size_bytes

    @property
    def exact_bytes(self) -> int:
        """Approximate footprint of the uncompressed term table."""
        return sum(len(term) + 8 for term in self._exact.term_counts)

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        if self._bloom is None:
            self.compress()
        scores: dict[str, float] = {}
        for name in filenames:
            keywords = extract_keywords(name)
            if not keywords:
                continue
            has_rare_term = any(term not in self._bloom for term in keywords)
            scores[name] = 0.0 if has_rare_term else 1.0
        return scores


class SamplingScheme(RareItemScheme):
    """SAM: estimate replica counts from a node sample.

    Sampling ``fraction`` of nodes sees each replica independently with
    probability ``fraction``, so the observed count is a binomial
    lower-bound estimate of the true count. With fraction 1.0 this is the
    Perfect scheme; with fraction 0.0 every estimate is zero and the
    scheme cannot rank items (Random behaviour under budgeted publishing).
    """

    name = "SAM"

    def __init__(
        self,
        replication: dict[str, int],
        sample_fraction: float,
        rng: random.Random | int | None = None,
    ):
        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in [0,1], got {sample_fraction}")
        self.replication = replication
        self.sample_fraction = sample_fraction
        self.rng = make_rng(rng)
        self.name = f"SAM({int(round(sample_fraction * 100))}%)"

    def rarity_scores(self, filenames: list[str]) -> dict[str, float]:
        scores: dict[str, float] = {}
        for name in filenames:
            replicas = self.replication.get(name, 0)
            if self.sample_fraction >= 1.0:
                observed = replicas
            elif self.sample_fraction <= 0.0:
                observed = 0
            else:
                observed = sum(
                    1 for _ in range(replicas) if self.rng.random() < self.sample_fraction
                )
            scores[name] = float(observed)
        return scores
