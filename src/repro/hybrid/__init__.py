"""The hybrid search infrastructure (Sections 5 and 7).

:mod:`repro.hybrid.rare_items` implements the localized schemes for
identifying rare items worth publishing into the DHT (Perfect, Random,
QRS, TF, TPF, SAM); :mod:`repro.hybrid.ultrapeer` is the hybrid
LimeWire/PIERSearch ultrapeer of Figure 17; :mod:`repro.hybrid.engine`
races Gnutella flooding against the DHT re-query as scheduled events in
virtual time; and :mod:`repro.hybrid.deployment` reproduces the 50-node
PlanetLab deployment experiment (on the event-driven engine by default).
"""

from repro.hybrid.rare_items import (
    CompressedTermFrequencyScheme,
    PerfectScheme,
    QueryResultsSizeScheme,
    RandomScheme,
    RareItemScheme,
    SamplingScheme,
    TermFrequencyScheme,
    TermPairFrequencyScheme,
    published_for_budget,
)
from repro.hybrid.ultrapeer import HybridQueryOutcome, HybridUltrapeer
from repro.hybrid.engine import HybridQueryEngine, QueryRace, RaceConfig
from repro.hybrid.deployment import DeploymentConfig, DeploymentReport, run_deployment

__all__ = [
    "HybridQueryEngine",
    "QueryRace",
    "RaceConfig",
    "RareItemScheme",
    "CompressedTermFrequencyScheme",
    "PerfectScheme",
    "RandomScheme",
    "QueryResultsSizeScheme",
    "TermFrequencyScheme",
    "TermPairFrequencyScheme",
    "SamplingScheme",
    "published_for_budget",
    "HybridUltrapeer",
    "HybridQueryOutcome",
    "DeploymentConfig",
    "DeploymentReport",
    "run_deployment",
]
