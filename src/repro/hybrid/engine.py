"""Event-driven hybrid query engine: the Figure 7/12 race in virtual time.

The closed-form hybrid path (:meth:`HybridUltrapeer.handle_leaf_query`)
prices each source analytically — a precomputed Gnutella first-result
latency, then ``critical_path_hops x dht_hop_latency`` for PIER. That is
exact for an idle, static overlay, but it cannot show what happens when
thousands of queries are in flight at once, when churn strikes mid-query,
or how the first-result CDF actually looks. This module runs the race
instead:

* **Gnutella side** — matching replicas become result-arrival events
  scheduled per the dynamic-query round structure
  (:meth:`GnutellaLatencyModel.arrival_for_depth`): one event per distinct
  replica depth, at the virtual time the TTL-``d`` round reaches it.
* **DHT side** — at the timeout (if nothing arrived) the re-query fires:
  the plan's keyword-site chain is routed hop by hop through
  :meth:`DhtNetwork.iter_lookup`, one simulator event and one latency draw
  per overlay hop. Churn scheduled mid-run removes nodes *between* those
  hop events, so in-flight walks really lose their next hop and recover
  through successor lists; a route broken beyond repair retries with
  backoff and eventually abandons the DHT side of the race.
* **Execution** — once the chain is routed, the plan runs on the
  streaming exchange dataflow (:mod:`repro.pier.dataflow`) sharing this
  simulator: posting-list tuple batches ship site-to-site as events, and
  the race resolves at the *first answer batch* while upstream batches
  are still in flight — a DHT answer wins mid-join, and
  ``pier_completion_latency`` records when the pipeline actually drained.
  ``RaceConfig(execution_mode="atomic")`` restores the legacy synchronous
  execute with its analytic answer tail. When the submitting ultrapeer's
  :class:`~repro.piersearch.search.SearchEngine` carries a cost-based
  optimizer (:mod:`repro.pier.optimizer`), each re-query races with the
  cheapest of the four join strategies — semi-join digest streams and
  Bloom-join candidate streams pipeline through the same exchange
  dataflow as the distributed join.
* **Resolution** — whichever source delivers first in virtual time wins
  the first-result latency; late Gnutella arrivals still count toward the
  final answer set, exactly like the analytic policy.

Wire costs are charged exactly once — by the dataflow's batch sends in
pipelined mode, or by the atomic executor in compatibility mode — and the
two runtimes account byte-identical payloads, so bandwidth comparisons
against the analytic path stay valid either way.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import DhtError, PlanError
from repro.common.ids import hash_key
from repro.common.rng import make_rng
from repro.dht.network import DhtNetwork
from repro.gnutella.latency import GnutellaLatencyModel
from repro.hybrid.ultrapeer import HybridQueryOutcome, HybridUltrapeer
from repro.obs.metrics import MetricsRegistry
from repro.pier.dataflow import DataflowConfig, DataflowExecutor, DataflowQuery
from repro.pier.query import DistributedPlan
from repro.piersearch.tokenizer import extract_keywords
from repro.piersearch.search import SearchEngine
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class RaceConfig:
    """Engine-level timing knobs for the simulated race.

    Per-ultrapeer policy (the Gnutella timeout and the cache-hit
    latency) lives on :class:`HybridUltrapeer` itself; the engine reads
    it from the submitting ultrapeer so both query paths share one
    source of truth.
    """

    #: mean one-way per-hop latency on the DHT overlay (seconds)
    dht_hop_latency: float = 1.2
    #: fractional spread of each hop draw: U[mean*(1-j), mean*(1+j)]
    hop_jitter: float = 0.35
    #: re-query attempts before the DHT side of the race is abandoned
    max_requery_attempts: int = 3
    #: virtual time between a broken route and the next attempt
    retry_backoff: float = 2.0
    #: hard wall on the whole re-query phase (walks + retries + pipeline),
    #: measured from the moment the re-query starts: when it expires the
    #: race finishes with a ``degraded`` outcome instead of riding a
    #: partition-stretched walk indefinitely. None = no deadline (the
    #: pre-hardening behaviour).
    requery_deadline: float | None = None
    #: how the re-query plan executes once the chain is routed:
    #: "pipelined" streams tuple batches through the exchange dataflow on
    #: the engine's simulator (a DHT answer can win mid-join);
    #: "atomic" is the legacy compatibility path (one synchronous
    #: execute_plan call priced as a lump tail)
    execution_mode: str = "pipelined"
    #: exchange batch size override (None = the plan's planner choice,
    #: falling back to the dataflow default)
    batch_size: int | None = None
    #: per-site join memory budget in *rows* (not bytes); overflowing
    #: build partitions spill to the DHT temp store
    memory_budget: int | None = None
    #: stop each re-query after this many answer tuples, cancelling
    #: upstream in-flight batches (None = drain the full join)
    stop_after: int | None = None


@dataclass
class QueryRace:
    """One leaf query in flight: the record the engine completes."""

    outcome: HybridQueryOutcome
    submitted_at: float
    stop_ttl: int
    #: gnutella results that have arrived so far in virtual time
    gnutella_arrived: int = 0
    #: DHT re-query attempts started (0 = never re-queried)
    pier_attempts: int = 0
    #: route repairs performed across all of this race's DHT walks
    route_retries: int = 0
    #: the DHT side gave up: routes stayed broken through every retry
    pier_failed: bool = False
    #: ring membership epoch when the race was submitted — compared at
    #: resolution to tell an honestly-empty answer from one that may have
    #: lost data to mid-race churn
    membership_epoch: int = 0
    #: DHT keys of this query's posting lists (table-qualified, the keys
    #: the walk actually reads) — checked against suspect ranges when a
    #: zero-result answer resolves
    posting_keys: tuple[int, ...] = ()
    #: posting-join matches the executed plan produced (entries surviving
    #: the last posting stage). Matches with zero final results mean the
    #: Item rows themselves are gone — loss the posting keys alone cannot
    #: prove.
    join_matches: int = 0
    done: bool = False
    finished_at: float | None = None
    #: invoked exactly once when the race resolves
    on_done: Callable[["QueryRace"], None] | None = None
    #: root trace span of this race, when the engine carries a tracer
    span: object = None

    @property
    def first_result_latency(self) -> float:
        return self.outcome.first_result_latency


@dataclass
class _Walk:
    """State of one in-progress hop-by-hop plan-dissemination walk."""

    race: QueryRace
    hybrid: HybridUltrapeer
    plan: DistributedPlan
    #: consecutive distinct sites still to reach, in chain order
    targets: list[int]
    index: int = 0
    origin: int = 0
    gen: object = None
    hops: int = 0
    #: "requery.attempt" span covering this walk, when tracing is on
    span: object = None


class HybridQueryEngine:
    """Races Gnutella flooding against the DHT re-query on a simulator.

    One engine serves every hybrid ultrapeer sharing a simulator and a
    DHT; races from different ultrapeers overlap freely in virtual time
    (the concurrency regime the benchmark drives past 1k in-flight).
    """

    def __init__(
        self,
        sim: Simulator,
        dht: DhtNetwork,
        latency_model: GnutellaLatencyModel | None = None,
        config: RaceConfig | None = None,
        rng=None,
        tracer=None,
        metrics=None,
    ):
        self.sim = sim
        self.dht = dht
        self.latency_model = latency_model or GnutellaLatencyModel()
        self.config = config or RaceConfig()
        self.rng = make_rng(rng)
        #: optional :class:`repro.obs.trace.Tracer` — when set, every race
        #: records a span tree (race -> flood arrivals / requery walks ->
        #: dataflow stages -> exchange batches)
        self.tracer = tracer
        #: engine counters are always live (retries, dead ends, churn
        #: recoveries fire on rare paths only, so the always-on cost is
        #: negligible); pass a shared registry to merge with other layers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: only a caller-supplied registry is wired into the dataflow's
        #: per-batch hot path — with no opt-in the dataflow runs unmetered
        self._wired_metrics = metrics
        self.races: list[QueryRace] = []
        self.inflight = 0
        self.peak_inflight = 0
        self.completed = 0
        if self.config.execution_mode not in ("atomic", "pipelined"):
            raise ValueError(
                f"unknown execution mode {self.config.execution_mode!r}"
            )
        #: one dataflow runtime per search engine, sharing this simulator
        #: and RNG so races and tuple batches interleave deterministically
        #: (the SearchEngine itself is held as the key so a recycled id()
        #: can never alias a stale runtime)
        self._dataflows: dict[int, tuple[SearchEngine, DataflowExecutor]] = {}

    def _dataflow_for(self, search_engine: SearchEngine) -> DataflowExecutor:
        key = id(search_engine)
        entry = self._dataflows.get(key)
        if entry is not None and entry[0] is search_engine:
            return entry[1]
        # Engines on a sharded kernel share one DHT; namespace temp keys
        # by shard so concurrent queries cannot collide on temp slots.
        shard_id = getattr(self.sim, "shard_id", None)
        dataflow = DataflowExecutor(
            search_engine.network,
            search_engine.catalog,
            sim=self.sim,
            config=DataflowConfig(
                hop_latency=self.config.dht_hop_latency,
                hop_jitter=self.config.hop_jitter,
                memory_budget=self.config.memory_budget,
            ),
            rng=self.rng,
            tracer=self.tracer,
            metrics=self._wired_metrics,
            temp_namespace="" if shard_id is None else f"shard{shard_id}|",
        )
        self._dataflows[key] = (search_engine, dataflow)
        return dataflow

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        hybrid: HybridUltrapeer,
        terms: list[str],
        match_depths: list[float],
        stop_ttl: int,
        on_done: Callable[[QueryRace], None] | None = None,
    ) -> QueryRace:
        """Schedule one leaf query's race; it resolves as the simulator runs.

        ``match_depths`` holds the overlay depth of every matching replica
        from the querying ultrapeer (``inf`` for unreachable ones); only
        replicas within ``stop_ttl`` produce arrival events.
        """
        reachable = Counter(
            max(1, int(depth)) for depth in match_depths if depth <= stop_ttl
        )
        outcome = HybridQueryOutcome(
            terms=tuple(terms),
            gnutella_results=sum(reachable.values()),
            gnutella_latency=math.inf,
        )
        engine = hybrid.search_engine
        posting_table = (
            "InvertedCache" if engine.inverted_cache else engine.planner.posting_table
        )
        race = QueryRace(
            outcome=outcome,
            submitted_at=self.sim.now,
            stop_ttl=stop_ttl,
            membership_epoch=self.dht.membership_version,
            posting_keys=tuple(
                hash_key(f"{posting_table}|{keyword}")
                for term in terms
                for keyword in extract_keywords(term)
            ),
            on_done=on_done,
        )
        if self.tracer is not None:
            race.span = self.tracer.begin(
                "hybrid.race",
                terms=list(terms),
                stop_ttl=stop_ttl,
                reachable_replicas=outcome.gnutella_results,
            )
        self.metrics.counter("hybrid.races").add(1)
        self.races.append(race)
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        # One arrival event per distinct depth: every replica at depth d
        # becomes visible when the TTL-d round reaches it.
        for depth, count in sorted(reachable.items()):
            at = self.latency_model.arrival_for_depth(depth, stop_ttl)
            if not math.isinf(at):
                self.sim.schedule(
                    at,
                    lambda race=race, count=count, depth=depth: self._on_gnutella_arrival(
                        race, count, depth
                    ),
                )
        self.sim.schedule(
            hybrid.gnutella_timeout, lambda: self._on_timeout(race, hybrid)
        )
        return race

    # ------------------------------------------------------------------
    # Gnutella side
    # ------------------------------------------------------------------

    def _on_gnutella_arrival(self, race: QueryRace, count: int, depth: int = 0) -> None:
        if race.gnutella_arrived == 0:
            race.outcome.gnutella_latency = self.sim.now - race.submitted_at
        race.gnutella_arrived += count
        if race.span is not None and race.span.recording:
            race.span.event("flood.arrival", depth=depth, results=count)

    # ------------------------------------------------------------------
    # DHT side
    # ------------------------------------------------------------------

    def _on_timeout(self, race: QueryRace, hybrid: HybridUltrapeer) -> None:
        if race.gnutella_arrived > 0:
            # Gnutella answered in time: no re-query, race resolved.
            self._finish(race)
            return
        race.outcome.used_pier = True
        terms = list(race.outcome.terms)
        entry = hybrid.cache_lookup(terms)
        if entry is not None:
            outcome = race.outcome
            outcome.cache_hit = True
            outcome.pier_results = entry.result_count
            outcome.saved_bytes = entry.cost_bytes
            self.metrics.counter("hybrid.cache_hits").add(1)
            if race.span is not None:
                race.span.event(
                    "cache.hit", results=entry.result_count, saved_bytes=entry.cost_bytes
                )
            self.sim.schedule(
                hybrid.cache_latency, lambda: self._complete_pier(race)
            )
            return
        if self.config.requery_deadline is not None:
            self.sim.schedule(
                self.config.requery_deadline, lambda: self._on_deadline(race)
            )
        self._start_requery(race, hybrid)

    def _on_deadline(self, race: QueryRace) -> None:
        """The re-query outlived its deadline: degrade instead of waiting.

        Under a partition the stretched hop delays (and retry backoffs) can
        push a walk arbitrarily far into virtual time; the deadline converts
        that into a prompt, explicitly-flagged partial answer. Whatever
        results already landed stay on the outcome — late pipeline batches
        may still top it up, matching the race's late-answers-count policy.
        """
        if race.done:
            return
        race.pier_failed = True
        self._mark_degraded(race, "deadline")
        self.metrics.counter("hybrid.requery_deadline_exceeded").add(1)
        self._finish(race)

    def _mark_degraded(self, race: QueryRace, reason: str) -> None:
        if race.outcome.degraded:
            return
        race.outcome.degraded = True
        race.outcome.degraded_reason = reason
        self.metrics.counter("hybrid.degraded", labels={"reason": reason}).add(1)
        if race.span is not None and race.span.recording:
            race.span.event("race.degraded", reason=reason)

    def _start_requery(self, race: QueryRace, hybrid: HybridUltrapeer) -> None:
        if race.done:
            return
        race.pier_attempts += 1
        self.metrics.counter("hybrid.requery_attempts").add(1)
        try:
            query_node = hybrid.dht_node_id
            if query_node not in self.dht.nodes:
                # The ultrapeer's own DHT node churned out; re-enter
                # anywhere (raises DhtError when the ring is empty, which
                # must resolve the race, not escape the simulator).
                query_node = self.dht.random_node_id()
            plan = hybrid.search_engine.prepare(
                list(race.outcome.terms), query_node=query_node
            )
        except PlanError:
            # No indexable terms: the re-query cannot be issued at all.
            self._finish(race)
            return
        except DhtError:
            self.metrics.counter("hybrid.dht_dead_ends").add(1)
            self._retry(race, hybrid)
            return
        targets: list[int] = []
        previous = plan.query_node
        for stage in plan.stages:
            if stage.site != previous:
                targets.append(stage.site)
                previous = stage.site
        walk = _Walk(
            race=race, hybrid=hybrid, plan=plan, targets=targets, origin=plan.query_node
        )
        if race.span is not None:
            walk.span = race.span.child(
                "requery.attempt",
                attempt=race.pier_attempts,
                strategy=plan.strategy.name,
                chain_sites=len(targets),
            )
        self._step_walk(walk)

    def _step_walk(self, walk: _Walk) -> None:
        """Advance the plan-dissemination walk by one overlay hop."""
        race = walk.race
        if race.done:
            return
        try:
            while True:
                if walk.gen is None:
                    if walk.index >= len(walk.targets):
                        self._execute(walk)
                        return
                    origin = walk.origin
                    if origin not in self.dht.nodes:
                        origin = self.dht.random_node_id()
                    walk.gen = self.dht.iter_lookup(
                        walk.targets[walk.index], origin=origin
                    )
                    next(walk.gen)  # position at the origin (hop zero)
                try:
                    next(walk.gen)  # take one overlay hop
                    walk.hops += 1
                    break
                except StopIteration as stop:
                    result = stop.value
                    race.route_retries += result.retries
                    if result.retries:
                        self.metrics.counter("hybrid.churn_recoveries").add(
                            result.retries
                        )
                    if walk.span is not None and walk.span.recording:
                        walk.span.event(
                            "dht.lookup",
                            target=walk.targets[walk.index],
                            owner=result.owner,
                            hops=walk.hops,
                            retries=result.retries,
                        )
                    walk.origin = result.owner
                    walk.index += 1
                    walk.gen = None
        except DhtError:
            # The route broke mid-walk beyond successor-list repair.
            self.metrics.counter("hybrid.dht_dead_ends").add(1)
            if walk.span is not None:
                walk.span.finish(error="DhtError", hops=walk.hops)
            self._retry(race, walk.hybrid)
            return
        self.sim.schedule(self._hop_delay(), lambda: self._step_walk(walk))

    def _execute(self, walk: _Walk) -> None:
        """Chain fully routed: run the plan, then deliver the answer(s).

        In ``pipelined`` mode (the default) the plan is handed to the
        exchange dataflow on this engine's simulator: tuple batches flow
        site-to-site as events, and the race resolves at the *first*
        answer batch — a DHT answer can win mid-join, while the rest of
        the pipeline keeps draining (its bytes still count, exactly like
        the atomic accounting). ``atomic`` mode keeps the legacy path: a
        synchronous execute priced as one answer/item-fetch tail.
        """
        race = walk.race
        if self.config.execution_mode == "atomic":
            try:
                result = walk.hybrid.search_engine.execute_plan(
                    walk.plan, trace_parent=walk.span
                )
            except DhtError:
                # A plan site churned out between preparation and execution.
                self.metrics.counter("hybrid.dht_dead_ends").add(1)
                if walk.span is not None:
                    walk.span.finish(error="DhtError", hops=walk.hops)
                self._retry(race, walk.hybrid)
                return
            outcome = race.outcome
            outcome.pier_results = len(result)
            outcome.pier_bytes = result.stats.bytes
            race.join_matches = result.stats.join_matches
            self._flag_untrusted_zero(race)
            if not outcome.degraded:
                walk.hybrid.cache_store(list(outcome.terms), result)
            if walk.span is not None:
                walk.span.finish(
                    hops=walk.hops, results=len(result), bytes=result.stats.bytes
                )
            # The answer/item-fetch tail: whatever part of the critical path
            # the dissemination chain did not cover.
            tail_hops = max(1, result.stats.critical_path_hops - result.stats.chain_hops)
            delay = sum(self._hop_delay() for _ in range(tail_hops))
            self.sim.schedule(delay, lambda: self._complete_pier(race))
            return
        if self.config.batch_size is not None:
            walk.plan.batch_size = self.config.batch_size
        self._dataflow_for(walk.hybrid.search_engine).submit(
            walk.plan,
            stop_after=self.config.stop_after,
            on_first_answer=lambda query: self._on_first_answer_batch(race),
            on_complete=lambda query: self._on_pipeline_complete(race, walk, query),
            on_error=lambda query, error: self._on_pipeline_error(race, walk, query),
            delay_dissemination=False,  # the walk already spent that time
            trace_parent=walk.span,
        )

    def _on_first_answer_batch(self, race: QueryRace) -> None:
        """The first answer tuples reached the query node mid-join."""
        race.outcome.pier_latency = self.sim.now - race.submitted_at
        self._finish(race)

    def _on_pipeline_complete(
        self, race: QueryRace, walk: _Walk, query: DataflowQuery
    ) -> None:
        """The dataflow drained: final result set and byte totals are in."""
        outcome = race.outcome
        result = walk.hybrid.search_engine.finalize(walk.plan, query.rows, query.stats)
        walk.hybrid.search_engine.observe_execution(walk.plan, query.stats)
        if walk.span is not None:
            walk.span.finish(
                hops=walk.hops, results=len(result), bytes=query.stats.bytes
            )
        outcome.pier_results = len(result)
        outcome.pier_bytes = query.stats.bytes
        race.join_matches = query.stats.join_matches
        outcome.pier_completion_latency = self.sim.now - race.submitted_at
        if outcome.pier_latency == 0.0:
            # No answer batch ever fired (empty result set): completion is
            # the only PIER timestamp this race gets.
            outcome.pier_latency = outcome.pier_completion_latency
        # Runs even when the race already resolved on its first answer
        # batch: the final result count was not known until now.
        self._flag_untrusted_zero(race)
        if not query.pipeline.early_terminated and not outcome.degraded:
            # A stop_after run is a deliberately truncated answer set and
            # a degraded answer may have lost data to churn: never let
            # either poison the shared result cache.
            walk.hybrid.cache_store(list(outcome.terms), result)
        self._finish(race)

    def _on_pipeline_error(
        self, race: QueryRace, walk: _Walk, query: DataflowQuery
    ) -> None:
        """The dataflow broke mid-join (a site or route churned away)."""
        if walk.span is not None:
            walk.span.finish(error="DhtError", hops=walk.hops)
        if race.done:
            # The race already resolved (it won on a delivered answer
            # batch): keep whatever partial results arrived rather than
            # retrying or flagging a resolved race as failed — but do not
            # cache a partial answer.
            if query.rows:
                outcome = race.outcome
                result = walk.hybrid.search_engine.finalize(
                    walk.plan, query.rows, query.stats
                )
                outcome.pier_results = len(result)
                outcome.pier_bytes = query.stats.bytes
                outcome.pier_completion_latency = self.sim.now - race.submitted_at
            self._mark_degraded(race, "partial-answer")
            return
        self.metrics.counter("hybrid.dht_dead_ends").add(1)
        self._retry(race, walk.hybrid)

    def _retry(self, race: QueryRace, hybrid: HybridUltrapeer) -> None:
        if race.pier_attempts >= self.config.max_requery_attempts:
            race.pier_failed = True
            self._mark_degraded(race, "requery-abandoned")
            self.metrics.counter("hybrid.pier_abandoned").add(1)
            self._finish(race)
            return
        self.metrics.counter("hybrid.requery_retries").add(1)
        self.sim.schedule(
            self.config.retry_backoff, lambda: self._start_requery(race, hybrid)
        )

    def _complete_pier(self, race: QueryRace) -> None:
        race.outcome.pier_latency = self.sim.now - race.submitted_at
        if race.outcome.pier_completion_latency == 0.0:
            race.outcome.pier_completion_latency = race.outcome.pier_latency
        self._flag_untrusted_zero(race)
        self._finish(race)

    def _flag_untrusted_zero(self, race: QueryRace) -> None:
        """Degrade a zero-result answer that cannot be trusted as empty.

        Runs where the *final* PIER result count is known (the atomic
        completion and the pipelined drain — never at the first answer
        batch, whose Item rows may still be in flight). An empty answer
        is only honest when the walk was clean, the ring membership never
        moved under it, none of its posting keys lies in a suspect range
        (a slice whose owner died with no handoff), and the posting join
        itself matched nothing. Otherwise a survivor may legitimately own
        the key range with none of the departed owner's data — loss that
        *looks* like absence. Flag it so recall accounting can tell the
        two apart.
        """
        outcome = race.outcome
        if (
            not outcome.used_pier
            or outcome.cache_hit
            or outcome.pier_results > 0
            or outcome.degraded
        ):
            return
        suspect_posting = any(self.dht.is_suspect(key) for key in race.posting_keys)
        # Join matches with zero final results mean the matched Item rows
        # are gone from the ring — loss the posting keys cannot prove.
        lost_items = race.join_matches > 0
        if suspect_posting or (lost_items and self.dht.suspect_ranges):
            self._mark_degraded(race, "suspect-range")
        elif (
            lost_items
            or race.pier_failed
            or race.route_retries > 0
            or race.pier_attempts > 1
            or self.dht.membership_version != race.membership_epoch
        ):
            self._mark_degraded(race, "membership-change")

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _finish(self, race: QueryRace) -> None:
        if race.done:
            return
        race.done = True
        race.finished_at = self.sim.now
        self.inflight -= 1
        self.completed += 1
        outcome = race.outcome
        winner = (
            "cache"
            if outcome.cache_hit
            else "gnutella"
            if race.gnutella_arrived > 0
            else "pier"
            if outcome.used_pier and not race.pier_failed
            else "none"
        )
        self.metrics.counter("hybrid.winner", labels={"source": winner}).add(1)
        if not math.isinf(race.first_result_latency):
            self.metrics.histogram(
                "hybrid.first_result_latency", reservoir_size=4096
            ).observe(race.first_result_latency)
        if race.span is not None:
            race.span.finish(
                winner=winner,
                used_pier=outcome.used_pier,
                cache_hit=outcome.cache_hit,
                pier_failed=race.pier_failed,
                pier_attempts=race.pier_attempts,
                route_retries=race.route_retries,
                gnutella_results=race.gnutella_arrived,
                pier_results=outcome.pier_results,
            )
        if race.on_done is not None:
            race.on_done(race)

    def _hop_delay(self) -> float:
        return self.dht.transport.hop_delay(
            self.rng, self.config.dht_hop_latency, self.config.hop_jitter
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        return self.inflight == 0

    def first_result_latencies(self) -> list[float]:
        """Finite simulated first-result latencies of resolved races."""
        return [
            race.first_result_latency
            for race in self.races
            if race.done and not math.isinf(race.first_result_latency)
        ]

    def throughput(self) -> float:
        """Resolved races per unit of virtual time."""
        if self.sim.now <= 0:
            return 0.0
        return self.completed / self.sim.now


# ----------------------------------------------------------------------
# Ring-sharded deployment
# ----------------------------------------------------------------------


def build_sharded_engines(
    kernel,
    dht: DhtNetwork,
    latency_model: GnutellaLatencyModel | None = None,
    config: RaceConfig | None = None,
    seed: int = 0,
    tracer=None,
    metrics=None,
) -> list["HybridQueryEngine"]:
    """One hybrid engine per region shard of a sharded kernel.

    Each engine runs on its shard's clock view
    (:class:`~repro.sim.shard.ShardView` quacks like a ``Simulator``), so
    races submitted to different shards drain under the kernel's
    conservative-lookahead windows while sharing one DHT. Engine RNGs are
    spawned from ``seed`` with shard-stable labels: shard ``i``'s draw
    stream is the same whether the kernel has 1 shard or N.

    Route queries with :func:`engine_for_node` — ultrapeers map to shards
    by the ring position of their DHT node id, the same partition the
    kernel uses for keys.
    """
    from repro.common.rng import spawn_rng

    root = make_rng(seed)
    return [
        HybridQueryEngine(
            kernel.shard(shard_id),
            dht,
            latency_model=latency_model,
            config=config,
            rng=spawn_rng(root, f"engine.shard.{shard_id}"),
            tracer=tracer,
            metrics=metrics,
        )
        for shard_id in range(kernel.num_shards)
    ]


def engine_for_node(engines: list["HybridQueryEngine"], node_id: int) -> "HybridQueryEngine":
    """The shard engine owning ``node_id``'s ring region."""
    from repro.sim.shard import shard_of_key

    return engines[shard_of_key(node_id, len(engines))]
