"""Partial-deployment simulation (Section 7).

Reproduces the paper's 50-node experiment: fifty hybrid ultrapeers join a
much larger Gnutella network and a private DHT overlay. During a warm-up
phase they snoop results of forwarded background queries and publish rare
items (the QRS scheme). During the test phase, leaf queries of hybrid
ultrapeers that time out on Gnutella are re-issued through PIERSearch.

Reported quantities mirror Section 7: publish bandwidth per file, PIER
first-result latency (with and without InvertedCache), per-query
bandwidth, and the reduction in queries that receive no results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean

from repro.cache.popularity import PopularityEstimator, query_key
from repro.cache.replication import AdaptiveReplicationController, ReplicationConfig
from repro.cache.results import QueryResultCache
from repro.common.rng import make_rng, spawn_rng
from repro.dht.churn import ChurnProcess
from repro.dht.network import DhtNetwork
from repro.gnutella.latency import GnutellaLatencyModel
from repro.hybrid.engine import HybridQueryEngine, RaceConfig
from repro.gnutella.measurement import (
    ContentMatcher,
    bfs_depths,
    dynamic_stop_ttl,
    first_result_latency_for_depth,
    index_hosts_by_result,
)
from repro.gnutella.network import GnutellaNetwork
from repro.gnutella.topology import TopologyConfig
from repro.hybrid.ultrapeer import HybridQueryOutcome, HybridUltrapeer
from repro.pier.catalog import Catalog
from repro.piersearch.publisher import Publisher
from repro.piersearch.search import SearchEngine
from repro.sim.engine import Simulator
from repro.workload.library import ContentLibrary
from repro.workload.queries import generate_workload


@dataclass(frozen=True)
class DeploymentConfig:
    """Scale and behaviour knobs for the deployment experiment."""

    num_ultrapeers: int = 1000
    num_leaves: int = 4000
    num_hybrid: int = 50
    num_items: int = 1500
    num_background_queries: int = 600
    num_test_queries: int = 400
    inverted_cache: bool = False
    #: price all four join strategies (distributed/semi/Bloom join,
    #: InvertedCache) per re-query with the cost-based optimizer and run
    #: the cheapest; False keeps the fixed per-deployment strategy
    cost_optimizer: bool = False
    qrs_threshold: int = 20
    gnutella_timeout: float = 30.0
    #: clients deepen to TTL 3 here: on the down-scaled overlay that covers
    #: a comparable fraction of ultrapeers to a real client's deep flood
    client_max_ttl: int = 3
    desired_results: int = 150
    seed: int = 0
    # --- repro.cache subsystem (0 budget = disabled, matching the paper) --
    #: byte budget of the shared ultrapeer result cache
    cache_budget_bytes: int = 0
    cache_policy: str = "lru"
    #: result entries expire after this much virtual time (None = never)
    cache_ttl: float | None = None
    #: recent sightings a query needs before its answer is admitted
    cache_admission_min: int = 1
    #: recent read-target resolutions of one DHT key — about one per plan
    #: stage or item fetch touching it — that make it hot (0 = replication off)
    hot_read_threshold: int = 0
    #: replicas placed per hot key beyond the natural owner
    replication_extra: int = 2
    #: virtual time between test-phase leaf queries
    query_interval: float = 1.0
    # --- event-driven query engine (repro.hybrid.engine) --------------
    #: run each leaf query as a virtual-time race (flood arrivals vs the
    #: hop-by-hop DHT re-query); False falls back to the closed-form path
    event_driven: bool = True
    #: mean one-way DHT hop latency used by the engine's draws
    dht_hop_latency: float = 1.2
    #: fractional jitter of each per-hop latency draw
    hop_jitter: float = 0.35
    #: how re-queries execute once routed: "pipelined" streams tuple
    #: batches through the exchange dataflow (first answer can win
    #: mid-join); "atomic" keeps the legacy lump-sum execution
    execution_mode: str = "pipelined"
    #: exchange batch size override (None = planner's per-plan choice)
    batch_size: int | None = None
    #: per-site join memory budget in *rows* (None = unbounded, no
    #: spilling); also fed to the cost optimizer's memory-pressure pricer
    memory_budget: int | None = None
    #: virtual time between churn steps on the private DHT (0 = no churn)
    churn_interval: float = 0.0
    #: churn steps applied during the test phase
    churn_steps: int = 0
    #: fraction of churn departures that are abrupt failures
    churn_failure_fraction: float = 0.5


@dataclass
class DeploymentReport:
    """Aggregated results of one deployment run."""

    config: DeploymentConfig
    outcomes: list[HybridQueryOutcome] = field(default_factory=list)
    files_published: int = 0
    publish_bytes: int = 0
    #: fraction of test queries with zero Gnutella results
    gnutella_no_result_fraction: float = 0.0
    #: fraction of test queries with zero results under the hybrid policy
    hybrid_no_result_fraction: float = 0.0
    #: fraction of test queries with zero results anywhere in the network
    oracle_no_result_fraction: float = 0.0
    pier_first_result_latencies: list[float] = field(default_factory=list)
    pier_query_bytes: list[int] = field(default_factory=list)
    # --- repro.cache subsystem ---------------------------------------
    cache_hits: int = 0
    cache_misses: int = 0
    #: wire bytes cache hits avoided re-spending
    cache_bytes_saved: int = 0
    #: hot posting-list keys the replication controller spread out
    replicated_keys: int = 0
    # --- event-driven engine (zero when the analytic path ran) --------
    #: most leaf queries simultaneously in flight in virtual time
    peak_inflight: int = 0
    #: mid-query route repairs performed across all DHT walks
    route_retries: int = 0
    #: re-queries abandoned after exhausting their retry budget
    pier_abandoned: int = 0

    @property
    def publish_kb_per_file(self) -> float:
        if self.files_published == 0:
            return 0.0
        return self.publish_bytes / self.files_published / 1024

    @property
    def no_result_reduction(self) -> float:
        """Relative reduction in no-result queries achieved by the hybrid."""
        if self.gnutella_no_result_fraction == 0:
            return 0.0
        return (
            self.gnutella_no_result_fraction - self.hybrid_no_result_fraction
        ) / self.gnutella_no_result_fraction

    @property
    def potential_reduction(self) -> float:
        """Upper bound: reduction if every available rare item were indexed."""
        if self.gnutella_no_result_fraction == 0:
            return 0.0
        return (
            self.gnutella_no_result_fraction - self.oracle_no_result_fraction
        ) / self.gnutella_no_result_fraction

    @property
    def mean_pier_latency(self) -> float:
        """Mean PIER first-result time, excluding the Gnutella timeout wait."""
        if not self.pier_first_result_latencies:
            return 0.0
        return mean(self.pier_first_result_latencies)

    @property
    def mean_pier_query_kb(self) -> float:
        if not self.pier_query_bytes:
            return 0.0
        return mean(self.pier_query_bytes) / 1024

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 when caching is off)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def mean_hybrid_latency_rare(self) -> float:
        """Mean first-result latency for queries answered via PIER."""
        latencies = [
            outcome.first_result_latency
            for outcome in self.outcomes
            if outcome.used_pier and outcome.pier_results > 0
        ]
        return mean(latencies) if latencies else math.inf


def run_deployment(config: DeploymentConfig | None = None) -> DeploymentReport:
    """Run the full Section 7 experiment and return the report."""
    config = config or DeploymentConfig()
    if config.cost_optimizer and config.inverted_cache:
        # An InvertedCache deployment has already fixed its strategy (and
        # prepaid the bandwidth at publish time); silently ignoring the
        # optimizer would report numbers from a configuration that never
        # ran the four-way choice.
        raise ValueError(
            "cost_optimizer=True requires inverted_cache=False: the "
            "optimizer prices strategies against the Inverted index"
        )
    rng = make_rng(config.seed)

    # --- Assemble the Gnutella network with content -------------------
    library = ContentLibrary.generate(
        num_items=config.num_items,
        alpha=0.6,
        max_replicas=max(50, config.num_items // 6),
        rng=spawn_rng(rng, "library"),
    )
    topology_config = TopologyConfig(
        num_ultrapeers=config.num_ultrapeers,
        num_leaves=config.num_leaves,
        new_client_fraction=0.0,
        seed=config.seed + 1,
    )
    gnutella = GnutellaNetwork.build(
        library, topology_config, rng=spawn_rng(rng, "gnutella")
    )

    # --- The hybrid overlay: 50 ultrapeers with a private DHT ---------
    hybrid_ids = gnutella.random_ultrapeers(config.num_hybrid)
    dht = DhtNetwork(rng=spawn_rng(rng, "dht"))
    dht_nodes = dht.populate(config.num_hybrid)
    catalog = Catalog(dht)
    publisher = Publisher(dht, catalog, inverted_cache=config.inverted_cache)
    search_engine = SearchEngine(
        dht,
        catalog,
        inverted_cache=config.inverted_cache,
        optimizer=config.cost_optimizer,
        memory_budget=config.memory_budget,
    )

    # --- The repro.cache subsystem (off unless configured) ------------
    # The result cache and popularity stream are shared by all hybrid
    # ultrapeers (they form one overlay tier); virtual time comes from the
    # event engine that drives the test phase.
    sim = Simulator()
    result_cache: QueryResultCache | None = None
    popularity: PopularityEstimator | None = None
    controller: AdaptiveReplicationController | None = None
    if config.cache_budget_bytes > 0:
        popularity = PopularityEstimator(
            capacity=128, window=max(64, config.num_test_queries)
        )
        admission = None
        if config.cache_admission_min > 1:
            minimum, estimator = config.cache_admission_min, popularity
            admission = lambda key: estimator.recent_count(key) >= minimum  # noqa: E731
        result_cache = QueryResultCache(
            config.cache_budget_bytes,
            policy=config.cache_policy,
            ttl=config.cache_ttl,
            clock=lambda: sim.now,
            cost_model=dht.cost_model,
            admission=admission,
        )
    if config.hot_read_threshold > 0:
        controller = AdaptiveReplicationController(
            dht,
            ReplicationConfig(
                hot_read_threshold=config.hot_read_threshold,
                extra_replicas=config.replication_extra,
            ),
            clock=lambda: sim.now,
        )

    hybrids = [
        HybridUltrapeer(
            ultrapeer_id=ultrapeer,
            dht_node_id=node.node_id,
            publisher=publisher,
            search_engine=search_engine,
            qrs_threshold=config.qrs_threshold,
            gnutella_timeout=config.gnutella_timeout,
            result_cache=result_cache,
            popularity=popularity,
        )
        for ultrapeer, node in zip(hybrid_ids, dht_nodes)
    ]
    hybrid_by_ultrapeer = {hybrid.ultrapeer_id: hybrid for hybrid in hybrids}

    matcher = ContentMatcher(gnutella)
    file_hosts = index_hosts_by_result(gnutella)
    latency_model = gnutella.latency_model

    # --- Warm-up: hybrid ultrapeers snoop background traffic ----------
    background = generate_workload(
        library,
        config.num_background_queries,
        rare_boost=0.30,
        popularity_exponent=0.75,
        max_terms=2,
        rng=spawn_rng(rng, "background"),
    )
    origin_rng = spawn_rng(rng, "origins")
    for query in background:
        origin = origin_rng.choice(gnutella.topology.ultrapeers)
        if popularity is not None:
            # Hybrid ultrapeers snoop forwarded queries, so background
            # traffic warms the popularity view the cache admits against.
            key = query_key(query.terms)
            if key:
                popularity.observe(key)
        _observe_background_query(
            gnutella, matcher, file_hosts, hybrid_by_ultrapeer, origin,
            query, config,
        )

    # --- Test phase: leaf queries of hybrid ultrapeers ----------------
    test = generate_workload(
        library,
        config.num_test_queries,
        rare_boost=0.30,
        popularity_exponent=0.75,
        max_terms=2,
        rng=spawn_rng(rng, "test"),
    )
    report = DeploymentReport(config=config)
    depths_cache: dict[int, dict[int, int]] = {}
    test_rng = spawn_rng(rng, "testorigin")
    gnutella_zero = oracle_zero = 0

    # The event-driven engine races every leaf query in virtual time;
    # the analytic fallback (event_driven=False) keeps the closed-form
    # pricing for comparison runs.
    engine: HybridQueryEngine | None = None
    if config.event_driven:
        engine = HybridQueryEngine(
            sim,
            dht,
            latency_model=latency_model,
            config=RaceConfig(
                dht_hop_latency=config.dht_hop_latency,
                hop_jitter=config.hop_jitter,
                execution_mode=config.execution_mode,
                batch_size=config.batch_size,
                memory_budget=config.memory_budget,
            ),
            rng=spawn_rng(rng, "engine"),
        )
    if config.churn_interval > 0 and config.churn_steps > 0:
        churn = ChurnProcess(
            dht,
            rng=spawn_rng(rng, "churn"),
            failure_fraction=config.churn_failure_fraction,
        )
        churn.schedule(sim, config.churn_interval, config.churn_steps)

    def run_test_query(query) -> None:
        nonlocal gnutella_zero, oracle_zero
        hybrid = test_rng.choice(hybrids)
        depths = depths_cache.get(hybrid.ultrapeer_id)
        if depths is None:
            depths = bfs_depths(gnutella, hybrid.ultrapeer_id)
            depths_cache[hybrid.ultrapeer_id] = depths
        matches = matcher.matching_replicas(list(query.terms))
        match_depths = [
            min(
                (depths[up] for up in file_hosts.get(file.result_key, ()) if up in depths),
                default=math.inf,
            )
            for file in matches
        ]
        stop_ttl = dynamic_stop_ttl(
            match_depths, config.desired_results, config.client_max_ttl
        )
        gnutella_count = sum(1 for depth in match_depths if depth <= stop_ttl)
        if engine is not None:
            race = hybrid.handle_leaf_query_simulated(
                engine, list(query.terms), match_depths, stop_ttl
            )
            report.outcomes.append(race.outcome)
        else:
            first_depth = min(match_depths, default=math.inf)
            gnutella_latency = first_result_latency_for_depth(
                first_depth, latency_model, config.client_max_ttl
            )
            outcome = hybrid.handle_leaf_query(
                list(query.terms), gnutella_count, gnutella_latency
            )
            report.outcomes.append(outcome)
        gnutella_zero += 1 if gnutella_count == 0 else 0
        oracle_zero += 1 if not matches else 0

    # Leaf queries arrive as simulator events, one every query_interval of
    # virtual time — this is the clock the cache's TTLs, the replication
    # controller's expiries, churn, and (event-driven) the races run on.
    for position, query in enumerate(test):
        sim.schedule_at(
            position * config.query_interval,
            lambda query=query: run_test_query(query),
        )
    sim.run()

    # Outcomes are final only once the simulator drains (event-driven
    # races resolve long after submission), so derive the per-query
    # aggregates in a single post-run pass for both paths.
    n = len(test)
    hybrid_zero = 0
    for outcome in report.outcomes:
        if outcome.total_results == 0:
            hybrid_zero += 1
        if outcome.used_pier:
            if not outcome.cache_hit:
                report.pier_query_bytes.append(outcome.pier_bytes)
            if outcome.pier_results > 0:
                report.pier_first_result_latencies.append(
                    outcome.pier_latency - config.gnutella_timeout
                )
    if engine is not None:
        report.peak_inflight = engine.peak_inflight
        report.route_retries = sum(race.route_retries for race in engine.races)
        report.pier_abandoned = sum(1 for race in engine.races if race.pier_failed)
    report.gnutella_no_result_fraction = gnutella_zero / n
    report.hybrid_no_result_fraction = hybrid_zero / n
    report.oracle_no_result_fraction = oracle_zero / n
    report.files_published = sum(hybrid.files_published for hybrid in hybrids)
    report.publish_bytes = sum(hybrid.publish_bytes for hybrid in hybrids)
    if result_cache is not None:
        report.cache_hits = result_cache.stats.hits
        report.cache_misses = result_cache.stats.misses
        report.cache_bytes_saved = result_cache.stats.bytes_saved
    if controller is not None:
        report.replicated_keys = controller.stats.replicated_keys
        controller.detach()
    return report


def _observe_background_query(
    gnutella: GnutellaNetwork,
    matcher: ContentMatcher,
    file_hosts: dict[tuple, list[int]],
    hybrid_by_ultrapeer: dict[int, HybridUltrapeer],
    origin: int,
    query,
    config: DeploymentConfig,
) -> None:
    """One background query: hybrid ultrapeers on its path snoop results.

    A hybrid ultrapeer sees the results of queries it forwarded. The
    flood's visited set is the set of forwarding ultrapeers, so every
    hybrid ultrapeer inside the (TTL-limited) horizon observes the result
    set and applies the QRS rule.
    """
    flood_result = gnutella.flood_query(origin, list(query.terms), ttl=2)
    observers = [
        hybrid_by_ultrapeer[up]
        for up in flood_result.visited
        if up in hybrid_by_ultrapeer
    ]
    if not observers:
        return
    results = matcher.matching_replicas(list(query.terms))
    # The snooped result stream is what came back through the flood: the
    # replicas whose hosting ultrapeers the flood reached.
    visible = [
        file
        for file in results
        if any(up in flood_result.visited for up in file_hosts.get(file.result_key, ()))
    ]
    for hybrid in observers:
        hybrid.observe_query_results(visible)
