"""The hybrid LimeWire/PIERSearch ultrapeer (Figure 17).

A hybrid ultrapeer participates in both networks: it behaves as an
ordinary Gnutella ultrapeer toward Gnutella, while its Gnutella proxy
snoops queries and results from the forwarded traffic, identifies rare
items (QRS scheme: results of queries returning fewer than 20 results),
and hands them to the PIERSearch client for publishing into the DHT.
Leaf queries that return nothing from Gnutella within a timeout are
re-issued through PIERSearch.

Two query paths coexist. :meth:`HybridUltrapeer.handle_leaf_query` is the
closed-form path (precomputed Gnutella latency, PIER priced as critical
path hops x hop latency). :meth:`HybridUltrapeer.handle_leaf_query_simulated`
instead *runs the race* on the event-driven engine
(:mod:`repro.hybrid.engine`): Gnutella result arrivals, the re-query
timeout, and every DHT routing hop become simulator events in virtual
time, so concurrent queries overlap, churn breaks routes mid-query, and
whichever source delivers first wins for real.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.popularity import PopularityEstimator, query_key
from repro.cache.results import QueryResultCache
from repro.common.errors import PlanError
from repro.piersearch.publisher import PublishReceipt, Publisher
from repro.piersearch.search import SearchEngine, SearchResult
from repro.workload.library import SharedFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.hybrid.engine import HybridQueryEngine, QueryRace

QRS_RESULT_SIZE_THRESHOLD = 20
DEFAULT_GNUTELLA_TIMEOUT = 30.0
DEFAULT_DHT_HOP_LATENCY = 1.2
#: time to serve a leaf from the local result cache (no overlay hops)
DEFAULT_CACHE_LATENCY = 0.05


@dataclass
class HybridQueryOutcome:
    """What happened to one leaf query under the hybrid scheme."""

    terms: tuple[str, ...]
    gnutella_results: int
    gnutella_latency: float
    used_pier: bool = False
    pier_results: int = 0
    pier_latency: float = 0.0
    #: virtual time until PIER's pipeline fully drained (pipelined races
    #: resolve at the first answer batch, so this is >= pier_latency; the
    #: closed-form and atomic paths set it equal to pier_latency)
    pier_completion_latency: float = 0.0
    pier_bytes: int = 0
    #: PIER answer served from the ultrapeer's result cache
    cache_hit: bool = False
    #: wire bytes the cache hit avoided re-spending
    saved_bytes: int = 0
    #: the answer is partial or uncertain (route abandoned, deadline hit,
    #: pipeline broke after first batch, or a zero-result walk ran against
    #: a ring whose membership changed mid-race). Degradation is always
    #: flagged, never silent: a scenario's recall accounting can separate
    #: "honestly empty" from "lost to the fault".
    degraded: bool = False
    #: why the answer is degraded ("" when it is not): "requery-abandoned",
    #: "deadline", "partial-answer", "suspect-range", or "membership-change"
    degraded_reason: str = ""

    @property
    def total_results(self) -> int:
        return self.gnutella_results + self.pier_results

    @property
    def first_result_latency(self) -> float:
        """Latency to the first result under the hybrid policy.

        Whichever source answered first wins: Gnutella's own first result,
        or PIER's (timeout + PIER execution) when the query was re-issued.
        No results at all -> inf.
        """
        candidates: list[float] = []
        if self.gnutella_results > 0:
            candidates.append(self.gnutella_latency)
        if self.used_pier and self.pier_results > 0:
            candidates.append(self.pier_latency)
        return min(candidates, default=math.inf)


class HybridUltrapeer:
    """One deployed hybrid ultrapeer: proxy + PIERSearch client."""

    def __init__(
        self,
        ultrapeer_id: int,
        dht_node_id: int,
        publisher: Publisher,
        search_engine: SearchEngine,
        qrs_threshold: int = QRS_RESULT_SIZE_THRESHOLD,
        gnutella_timeout: float = DEFAULT_GNUTELLA_TIMEOUT,
        dht_hop_latency: float = DEFAULT_DHT_HOP_LATENCY,
        result_cache: QueryResultCache | None = None,
        popularity: PopularityEstimator | None = None,
        cache_latency: float = DEFAULT_CACHE_LATENCY,
        metrics=None,
    ):
        self.ultrapeer_id = ultrapeer_id
        self.dht_node_id = dht_node_id
        self.publisher = publisher
        self.search_engine = search_engine
        self.qrs_threshold = qrs_threshold
        self.gnutella_timeout = gnutella_timeout
        self.dht_hop_latency = dht_hop_latency
        #: optional (possibly shared) query-result cache consulted before
        #: re-issuing a timed-out leaf query through PIERSearch
        self.result_cache = result_cache
        #: optional (possibly shared) popularity stream fed by leaf queries
        self.popularity = popularity
        self.cache_latency = cache_latency
        #: optional (usually shared) :class:`repro.obs.metrics.MetricsRegistry`
        #: — QRS publish volume and closed-form query-path counters
        self.metrics = metrics
        self.receipts: list[PublishReceipt] = []
        self._published_keys: set[tuple] = set()
        self.outcomes: list[HybridQueryOutcome] = []

    # ------------------------------------------------------------------
    # Proxy: rare-item identification and publishing (QRS)
    # ------------------------------------------------------------------

    def observe_query_results(self, results: list[SharedFile]) -> int:
        """Snoop one forwarded query's result set; publish if it is small.

        Implements the QRS rare-item scheme the deployment used: result
        sets smaller than the threshold are treated as rare and published.
        Returns the number of files newly published.
        """
        if not results or len(results) >= self.qrs_threshold:
            return 0
        published = 0
        for file in results:
            if self.publish_file(file):
                published += 1
        return published

    def publish_file(self, file: SharedFile) -> bool:
        """Publish one file unless this ultrapeer already published it."""
        key = file.result_key
        if key in self._published_keys:
            return False
        self._published_keys.add(key)
        receipt = self.publisher.publish_file(
            filename=file.filename,
            filesize=file.filesize,
            ip_address=file.ip_address,
            port=file.port,
            origin=self.dht_node_id,
        )
        self.receipts.append(receipt)
        if self.metrics is not None:
            self.metrics.counter("ultrapeer.qrs_published").add(1)
            self.metrics.counter("ultrapeer.qrs_publish_bytes").add(receipt.bytes)
        return True

    @property
    def files_published(self) -> int:
        return len(self.receipts)

    @property
    def publish_bytes(self) -> int:
        return sum(receipt.bytes for receipt in self.receipts)

    # ------------------------------------------------------------------
    # Hybrid query path
    # ------------------------------------------------------------------

    def handle_leaf_query(
        self,
        terms: list[str],
        gnutella_results: int,
        gnutella_latency: float,
    ) -> HybridQueryOutcome:
        """Apply the hybrid policy to one leaf query.

        The Gnutella attempt has already happened (its result count and
        first-result latency are inputs); if it produced nothing within
        the timeout, the query is re-issued through PIERSearch. PIER's
        first-result latency is its critical-path hop count times the DHT
        hop latency.
        """
        # The re-query fires when nothing arrived within the timeout; any
        # late Gnutella results still count toward the final answer set.
        timed_out = gnutella_results == 0 or gnutella_latency > self.gnutella_timeout
        outcome = HybridQueryOutcome(
            terms=tuple(terms),
            gnutella_results=gnutella_results,
            gnutella_latency=gnutella_latency,
        )
        cache_key = query_key(terms)
        if self.popularity is not None and cache_key:
            self.popularity.observe(cache_key)
        if self.metrics is not None:
            self.metrics.counter("ultrapeer.leaf_queries").add(1)
        if not timed_out:
            self.outcomes.append(outcome)
            return outcome
        outcome.used_pier = True
        if self.metrics is not None:
            self.metrics.counter("ultrapeer.pier_requeries").add(1)
        entry = self.cache_lookup(terms)
        if entry is not None:
            # Served from the ultrapeer's own cache: no plan shipped,
            # no posting lists touched, answer latency is local.
            outcome.cache_hit = True
            outcome.pier_results = entry.result_count
            outcome.saved_bytes = entry.cost_bytes
            if self.metrics is not None:
                self.metrics.counter("ultrapeer.cache_hits").add(1)
            outcome.pier_latency = self.gnutella_timeout + self.cache_latency
            outcome.pier_completion_latency = outcome.pier_latency
            self.outcomes.append(outcome)
            return outcome
        try:
            result = self.search_engine.search(terms, query_node=self.dht_node_id)
        except PlanError:
            # Only a query with no indexable terms cannot be re-issued;
            # anything else (routing faults, schema bugs) must propagate.
            self.outcomes.append(outcome)
            return outcome
        outcome.pier_results = len(result)
        outcome.pier_bytes = result.stats.bytes
        pier_time = result.stats.critical_path_hops * self.dht_hop_latency
        outcome.pier_latency = self.gnutella_timeout + pier_time
        outcome.pier_completion_latency = outcome.pier_latency
        self.cache_store(terms, result)
        self.outcomes.append(outcome)
        return outcome

    def handle_leaf_query_simulated(
        self,
        engine: "HybridQueryEngine",
        terms: list[str],
        match_depths: list[float],
        stop_ttl: int,
    ) -> "QueryRace":
        """Run one leaf query as a virtual-time race on ``engine``.

        The Gnutella side is described by ``match_depths`` — the overlay
        depth of every matching replica from this ultrapeer (``inf`` when
        unreachable) — and the dynamic-query stopping TTL. The engine
        schedules the result arrivals, the re-query timeout, and the
        hop-by-hop DHT walk; the returned race's outcome (also appended
        to :attr:`outcomes`) is final once the simulator drains.
        """
        cache_key = query_key(terms)
        if self.popularity is not None and cache_key:
            self.popularity.observe(cache_key)
        race = engine.submit(self, terms, match_depths, stop_ttl)
        self.outcomes.append(race.outcome)
        return race

    # ------------------------------------------------------------------
    # Result-cache hooks (shared by both query paths)
    # ------------------------------------------------------------------

    def cache_lookup(self, terms: list[str]):
        """Consult the shared result cache; None on miss or when disabled."""
        if self.result_cache is None or not query_key(terms):
            return None
        return self.result_cache.get(terms)

    def cache_store(self, terms: list[str], result: SearchResult) -> None:
        """Offer a freshly executed answer to the result cache."""
        if self.result_cache is None or not query_key(terms):
            return
        self.result_cache.put(
            terms,
            result.filenames,
            cost_bytes=result.stats.bytes,
            result_count=len(result),
        )
