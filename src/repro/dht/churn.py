"""Churn driver for the DHT.

P2P networks see continuous node arrival and departure ("churn"); the
Bamboo DHT the paper deploys on was designed specifically to handle it
[Rhea et al. 2004]. This driver applies join/leave events to a
:class:`~repro.dht.network.DhtNetwork` either in bulk (for trace-style
experiments) or scheduled on a simulator clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.dht.network import DhtNetwork
from repro.sim.engine import Simulator


@dataclass
class ChurnStats:
    joins: int = 0
    leaves: int = 0
    failures: int = 0


class ChurnProcess:
    """Applies churn to a DHT network.

    ``failure_fraction`` of departures are abrupt failures (no key
    handoff); the rest are graceful leaves.
    """

    def __init__(
        self,
        network: DhtNetwork,
        rng: random.Random | int | None = None,
        failure_fraction: float = 0.5,
    ):
        if not 0.0 <= failure_fraction <= 1.0:
            raise ValueError(f"failure_fraction must be in [0,1], got {failure_fraction}")
        self.network = network
        self.rng = make_rng(rng)
        self.failure_fraction = failure_fraction
        self.stats = ChurnStats()

    def churn_step(self, joins: int = 1, leaves: int = 1, stabilize: bool = True) -> None:
        """Apply ``joins`` arrivals and ``leaves`` departures, then stabilize.

        With ``stabilize=False`` the survivors keep their now-stale routing
        tables (fingers naming departed nodes) until someone stabilizes —
        the regime in-flight hop-by-hop lookups must route around via
        successor-list recovery.
        """
        for _ in range(leaves):
            if self.network.size <= 1:
                break
            victim = self.network.random_node_id()
            graceful = self.rng.random() >= self.failure_fraction
            self.network.remove_node(victim, graceful=graceful)
            if graceful:
                self.stats.leaves += 1
            else:
                self.stats.failures += 1
        for _ in range(joins):
            self.network.create_node()
            self.stats.joins += 1
        if stabilize:
            self.network.stabilize()

    def run_session_churn(self, turnover_fraction: float) -> None:
        """Replace ``turnover_fraction`` of the network (size preserved)."""
        count = int(self.network.size * turnover_fraction)
        self.churn_step(joins=count, leaves=count)

    def schedule(
        self,
        sim: Simulator,
        interval: float,
        steps: int,
        joins_per_step: int = 1,
        leaves_per_step: int = 1,
        stabilize: bool = True,
    ) -> None:
        """Schedule periodic churn steps on a simulator clock.

        Interleaved with an event-driven query workload this is *churn
        during queries*: departures land between the hop events of
        in-flight lookups.
        """
        for step in range(1, steps + 1):
            sim.schedule(
                interval * step,
                lambda j=joins_per_step, l=leaves_per_step, s=stabilize: self.churn_step(
                    j, l, stabilize=s
                ),
            )
