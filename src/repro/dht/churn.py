"""Churn driver for the DHT.

P2P networks see continuous node arrival and departure ("churn"); the
Bamboo DHT the paper deploys on was designed specifically to handle it
[Rhea et al. 2004]. This driver applies join/leave events to a
:class:`~repro.dht.network.DhtNetwork` either in bulk (for trace-style
experiments) or scheduled on a simulator clock.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass

from repro.common.ids import KEY_SPACE
from repro.common.rng import make_rng
from repro.dht.network import DhtNetwork
from repro.sim.engine import Simulator


@dataclass
class ChurnStats:
    joins: int = 0
    leaves: int = 0
    failures: int = 0


class ChurnProcess:
    """Applies churn to a DHT network.

    ``failure_fraction`` of departures are abrupt failures (no key
    handoff); the rest are graceful leaves.
    """

    def __init__(
        self,
        network: DhtNetwork,
        rng: random.Random | int | None = None,
        failure_fraction: float = 0.5,
    ):
        if not 0.0 <= failure_fraction <= 1.0:
            raise ValueError(f"failure_fraction must be in [0,1], got {failure_fraction}")
        self.network = network
        self.rng = make_rng(rng)
        self.failure_fraction = failure_fraction
        self.stats = ChurnStats()

    def churn_step(self, joins: int = 1, leaves: int = 1, stabilize: bool = True) -> None:
        """Apply ``joins`` arrivals and ``leaves`` departures, then stabilize.

        With ``stabilize=False`` the survivors keep their now-stale routing
        tables (fingers naming departed nodes) until someone stabilizes —
        the regime in-flight hop-by-hop lookups must route around via
        successor-list recovery.
        """
        for _ in range(leaves):
            if self.network.size <= 1:
                break
            victim = self.network.random_node_id()
            graceful = self.rng.random() >= self.failure_fraction
            self.network.remove_node(victim, graceful=graceful)
            if graceful:
                self.stats.leaves += 1
            else:
                self.stats.failures += 1
        for _ in range(joins):
            self.network.create_node()
            self.stats.joins += 1
        if stabilize:
            self.network.stabilize()

    def regional_leave(
        self,
        count: int,
        start_key: int | None = None,
        failure_fraction: float | None = None,
        stabilize: bool = True,
    ) -> list[tuple[int, bool]]:
        """Correlated regional failure: a contiguous ring arc departs at once.

        ``count`` ring-adjacent nodes (starting at the first node at or
        after ``start_key``, or at a seeded random position) leave in the
        same step; ``failure_fraction`` of them fail abruptly (defaults to
        this process's fraction), the rest leave gracefully. At least one
        node always survives. Returns ``(node_id, graceful)`` per victim,
        in ring order.

        Victims are removed in *reverse* ring order, so every graceful
        leave hands its keys directly to the arc's surviving successor —
        each handed-off key is released exactly once. Removing in forward
        ring order would instead cascade keys victim-to-victim (each key
        re-handed and re-charged at every subsequent removal), and a
        single abrupt failure late in the arc would silently swallow every
        graceful neighbour's keys handed to it earlier in the same step.
        """
        if count <= 0:
            return []
        ring = sorted(self.network.nodes)
        count = min(count, len(ring) - 1)
        if count <= 0:
            return []
        if start_key is None:
            start = self.rng.randrange(len(ring))
        else:
            start = bisect_left(ring, start_key % KEY_SPACE) % len(ring)
        fraction = (
            self.failure_fraction if failure_fraction is None else failure_fraction
        )
        victims = [
            (ring[(start + i) % len(ring)], self.rng.random() >= fraction)
            for i in range(count)
        ]
        for victim, graceful in reversed(victims):
            self.network.remove_node(victim, graceful=graceful)
            if graceful:
                self.stats.leaves += 1
            else:
                self.stats.failures += 1
        if stabilize:
            self.network.stabilize()
        return victims

    def run_session_churn(self, turnover_fraction: float) -> None:
        """Replace ``turnover_fraction`` of the network (size preserved)."""
        count = int(self.network.size * turnover_fraction)
        self.churn_step(joins=count, leaves=count)

    def schedule(
        self,
        sim: Simulator,
        interval: float,
        steps: int,
        joins_per_step: int = 1,
        leaves_per_step: int = 1,
        stabilize: bool = True,
    ) -> None:
        """Schedule periodic churn steps on a simulator clock.

        Interleaved with an event-driven query workload this is *churn
        during queries*: departures land between the hop events of
        in-flight lookups.
        """
        for step in range(1, steps + 1):
            sim.schedule(
                interval * step,
                lambda j=joins_per_step, l=leaves_per_step, s=stabilize: self.churn_step(
                    j, l, stabilize=s
                ),
            )
