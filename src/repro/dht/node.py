"""A single Chord-style DHT node.

Each node knows only its own routing state: a finger table (successor of
n + 2^i for each i) and a short successor list for fault tolerance.
Routing decisions use exclusively this local state, so measured hop counts
are honest Chord hop counts, not artifacts of global knowledge.
"""

from __future__ import annotations

from repro.common.ids import KEY_BITS, in_interval, ring_distance
from repro.dht.keyspace import finger_start
from repro.dht.storage import LocalStore


class DhtNode:
    """State of one DHT node: id, fingers, successors, and local storage."""

    def __init__(self, node_id: int, successor_count: int = 8):
        self.node_id = node_id
        self.successor_count = successor_count
        self.fingers: list[int] = []  # fingers[i] = successor(node_id + 2^i)
        self.successors: list[int] = []
        self.predecessor: int | None = None
        self.store = LocalStore()
        self.alive = True

    def update_routing(self, sorted_ids: list[int]) -> None:
        """Refresh fingers and successor list from the current ring.

        This plays the role of Chord's periodic stabilization: in a real
        deployment each entry would be found via a lookup; here the network
        facade hands us the (already known) ring membership. Routing itself
        still uses only this node's table.
        """
        from repro.dht.keyspace import responsible_node, successor_list

        self.fingers = []
        previous = None
        for index in range(KEY_BITS):
            target = finger_start(self.node_id, index)
            owner = responsible_node(sorted_ids, target)
            # Dedup consecutive identical fingers to keep the table small.
            if owner != previous:
                self.fingers.append(owner)
                previous = owner
        self.successors = successor_list(sorted_ids, self.node_id, self.successor_count)
        index = sorted_ids.index(self.node_id)
        self.predecessor = sorted_ids[index - 1] if len(sorted_ids) > 1 else None

    def owns(self, key: int) -> bool:
        """True if this node is responsible for ``key``.

        A node owns the interval (predecessor, self].
        """
        if self.predecessor is None:
            return True
        return in_interval(key, self.predecessor, self.node_id, inclusive_end=True)

    def closest_preceding(self, key: int) -> int | None:
        """Best next hop for ``key`` from this node's routing state.

        Chooses the routing-table entry that most tightly precedes the key
        clockwise (classic Chord ``closest_preceding_finger``), falling back
        to the first successor. Returns None when this node has no better
        candidate than itself.
        """
        best: int | None = None
        best_distance = ring_distance(self.node_id, key)
        for candidate in self.fingers + self.successors:
            if candidate == self.node_id:
                continue
            distance = ring_distance(candidate, key)
            if distance < best_distance:
                best = candidate
                best_distance = distance
        return best

    def first_successor(self) -> int | None:
        return self.successors[0] if self.successors else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DhtNode({self.node_id:040x})"
