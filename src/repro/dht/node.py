"""A single Chord-style DHT node.

Each node knows only its own routing state: a finger table (successor of
n + 2^i for each i) and a short successor list for fault tolerance.
Routing decisions use exclusively this local state, so measured hop counts
are honest Chord hop counts, not artifacts of global knowledge.

The node is slotted and lazy so a million of them fit in RAM: fingers,
successors, and predecessor are derived on first use from the network's
published :class:`~repro.dht.ring.RingSnapshot` (keyed by the snapshot
version), and the local store is only allocated when something is stored.
The eager :meth:`update_routing` path is kept as the reference
implementation — standalone nodes (no snapshot cell) and equivalence
tests use it, and the lazy derivation is pinned byte-identical to it.
"""

from __future__ import annotations

from repro.common.ids import KEY_BITS, in_interval, ring_distance
from repro.dht.keyspace import finger_start
from repro.dht.storage import LocalStore


class DhtNode:
    """State of one DHT node: id, fingers, successors, and local storage."""

    __slots__ = (
        "node_id",
        "successor_count",
        "alive",
        "_fingers",
        "_successors",
        "_predecessor",
        "_store",
        "_ring_cell",
        "_routed_version",
    )

    def __init__(self, node_id: int, successor_count: int = 8, ring_cell=None):
        self.node_id = node_id
        self.successor_count = successor_count
        self.alive = True
        self._fingers: list[int] | None = None
        self._successors: list[int] | None = None
        self._predecessor: int | None = None
        self._store: LocalStore | None = None
        #: shared slot holding the network's latest stabilize snapshot
        #: (None for standalone nodes driven via :meth:`update_routing`)
        self._ring_cell = ring_cell
        #: snapshot version the current tables were derived from — pinned
        #: at join to the version already published, so a node never
        #: derives tables from a snapshot older than its own membership
        #: (an id that departed and rejoined between stabilizes would
        #: otherwise read its stale pre-departure tables back out of it)
        self._routed_version: int | None = None
        if ring_cell is not None and ring_cell.snapshot is not None:
            self._routed_version = ring_cell.snapshot.version

    # -- storage (lazy) ------------------------------------------------

    @property
    def store(self) -> LocalStore:
        """The node's local store, allocated on first touch."""
        store = self._store
        if store is None:
            store = self._store = LocalStore()
        return store

    # -- routing tables (lazy, snapshot-derived) -----------------------

    def _refresh(self) -> None:
        """Derive tables from the current snapshot if it moved.

        A node absent from the snapshot (joined after the last stabilize)
        keeps whatever tables it has — empty for a fresh node — exactly
        matching the eager path, where stabilize never ran for it.
        """
        cell = self._ring_cell
        if cell is None:
            return
        snapshot = cell.snapshot
        if snapshot is None or snapshot.version == self._routed_version:
            return
        if not snapshot.contains(self.node_id):
            return
        self._fingers = snapshot.fingers_of(self.node_id)
        self._successors = snapshot.successors_of(self.node_id, self.successor_count)
        self._predecessor = snapshot.predecessor_of(self.node_id)
        self._routed_version = snapshot.version

    @property
    def fingers(self) -> list[int]:
        """fingers[i] = successor(node_id + 2^i), consecutive dups dropped."""
        self._refresh()
        return self._fingers if self._fingers is not None else []

    @fingers.setter
    def fingers(self, value: list[int]) -> None:
        # Materialize the other tables from the current snapshot first so
        # an explicit assignment sticks (and only it) until the next
        # stabilize, exactly as under eager routing.
        self._refresh()
        self._fingers = value

    @property
    def successors(self) -> list[int]:
        self._refresh()
        return self._successors if self._successors is not None else []

    @successors.setter
    def successors(self, value: list[int]) -> None:
        self._refresh()
        self._successors = value

    @property
    def predecessor(self) -> int | None:
        self._refresh()
        return self._predecessor

    @predecessor.setter
    def predecessor(self, value: int | None) -> None:
        self._refresh()
        self._predecessor = value

    def update_routing(self, sorted_ids) -> None:
        """Refresh fingers and successor list from the current ring.

        This plays the role of Chord's periodic stabilization: in a real
        deployment each entry would be found via a lookup; here the network
        facade hands us the (already known) ring membership. Routing itself
        still uses only this node's table.
        """
        import bisect

        from repro.dht.keyspace import responsible_node, successor_list

        fingers: list[int] = []
        previous = None
        for index in range(KEY_BITS):
            target = finger_start(self.node_id, index)
            owner = responsible_node(sorted_ids, target)
            # Dedup consecutive identical fingers to keep the table small.
            if owner != previous:
                fingers.append(owner)
                previous = owner
        self._fingers = fingers
        self._successors = successor_list(sorted_ids, self.node_id, self.successor_count)
        index = bisect.bisect_left(sorted_ids, self.node_id)
        self._predecessor = sorted_ids[index - 1] if len(sorted_ids) > 1 else None
        # Pin the tables to the current snapshot epoch so a lazy refresh
        # does not immediately overwrite an explicit update.
        cell = self._ring_cell
        if cell is not None and cell.snapshot is not None:
            self._routed_version = cell.snapshot.version

    def owns(self, key: int) -> bool:
        """True if this node is responsible for ``key``.

        A node owns the interval (predecessor, self].
        """
        predecessor = self.predecessor
        if predecessor is None:
            return True
        return in_interval(key, predecessor, self.node_id, inclusive_end=True)

    def closest_preceding(self, key: int) -> int | None:
        """Best next hop for ``key`` from this node's routing state.

        Chooses the routing-table entry that most tightly precedes the key
        clockwise (classic Chord ``closest_preceding_finger``), falling back
        to the first successor. Returns None when this node has no better
        candidate than itself.
        """
        best: int | None = None
        node_id = self.node_id
        best_distance = ring_distance(node_id, key)
        for candidate in self.fingers + self.successors:
            if candidate == node_id:
                continue
            distance = ring_distance(candidate, key)
            if distance < best_distance:
                best = candidate
                best_distance = distance
        return best

    def first_successor(self) -> int | None:
        successors = self.successors
        return successors[0] if successors else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DhtNode({self.node_id:040x})"
