"""DHT network facade: membership, routing, put/get.

``DhtNetwork`` owns the ring membership and drives per-node routing. All
data-path operations (lookup, put, get) are routed hop by hop using only
each node's local finger/successor state and are charged to a
:class:`~repro.common.units.BandwidthMeter`, so experiments can report the
message overheads the paper's model predicts (O(log N) per operation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.common.errors import DhtError, KeyNotFoundError, NodeNotFoundError
from repro.common.ids import KEY_SPACE, hash_key, in_interval
from repro.common.rng import make_rng
from repro.common.units import BandwidthMeter, CostModel, DEFAULT_COST_MODEL
from repro.dht.node import DhtNode
from repro.dht.ring import COMPACT_SHIFT, Ring, RingCell, RingSnapshot
from repro.net.messages import DirectMessage, RoutedMessage
from repro.net.transport import InProcessTransport, Transport

MAX_HOPS_FACTOR = 4  # routing gives up after 4*log2(N)+8 hops


@dataclass(frozen=True)
class BatchShipment:
    """Wire cost of one shipped tuple batch (see :meth:`DhtNetwork.ship_batch`)."""

    hops: int
    messages: int
    bytes: int


@dataclass
class LookupResult:
    """Outcome of routing a key to its responsible node."""

    key: int
    owner: int
    path: list[int] = field(default_factory=list)
    #: route repairs performed mid-lookup (dead next hop / dead current
    #: node recovered through a successor list); only nonzero for
    #: hop-by-hop lookups that overlapped churn
    retries: int = 0

    @property
    def hops(self) -> int:
        """Number of overlay messages used (path edges)."""
        return max(0, len(self.path) - 1)


class DhtNetwork:
    """A complete DHT: nodes, routing, storage, and replication.

    **Route cache invariant.** Between membership changes, routing over
    stabilized tables is a pure function of ``(origin, owner region)``:
    every key owned by the same node — distinguishing the owner's own id
    from the interior of its interval, the only two cases Chord's
    ``closest_preceding_finger`` can tell apart — follows the identical
    finger path from a given origin. :meth:`lookup` therefore memoizes
    its hop paths under an epoch stamp (:attr:`membership_version`,
    bumped on every join/leave, including every churn step). A cache hit
    replays the stored path verbatim — same hops, same owner, so callers
    charge byte-for-byte identical costs — and a stale entry can never be
    served because any membership change moves the epoch and flushes the
    cache. The hop-by-hop :meth:`iter_lookup` walk is deliberately *not*
    cached: it exists to observe churn mid-walk.
    """

    def __init__(
        self,
        replication: int = 1,
        successor_count: int = 8,
        cost_model: CostModel | None = None,
        rng: random.Random | int | None = None,
        route_cache: bool = True,
        transport: Transport | None = None,
        compact_ids: bool = False,
        lazy_routing: bool = True,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.successor_count = max(successor_count, replication)
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.rng = make_rng(rng)
        self.nodes: dict[int, DhtNode] = {}
        #: random node ids restricted to multiples of 2**96 so the ring
        #: packs into a sorted ``array('Q')`` — 8 bytes/peer membership
        #: (see :mod:`repro.dht.ring`); identical routing semantics
        self.compact_ids = compact_ids
        #: fingers/successors derived lazily from the stabilize snapshot
        #: instead of materialized per node per stabilize; ``False`` keeps
        #: the eager reference path for equivalence testing
        self.lazy_routing = lazy_routing
        self._ring = Ring(compact=compact_ids)  # sorted node ids
        self._ring_cell = RingCell()
        #: bumped once per stabilize call: snapshot versions must move on
        #: *every* stabilize (eager rebuilds unconditionally), not only
        #: when membership changed
        self._stabilize_serial = 0
        self.meter = BandwidthMeter()
        #: every cross-node byte flows through this boundary (typed
        #: messages, charged to the meter); swap it to re-target the same
        #: overlay at a different backend — see :mod:`repro.net.transport`
        self.transport = transport or InProcessTransport(self.meter, self.cost_model)
        self._stale = False
        #: bumped on every join/leave; cheap epoch stamp for caches (e.g.
        #: the catalog's posting-size statistics) that must not survive churn
        self.membership_version = 0
        # --- epoch-stamped route cache ---------------------------------
        #: memoizes :meth:`lookup` paths between membership changes (see
        #: ``route_cache`` in the class docstring); ``route_cache=False``
        #: routes every lookup hop by hop, for equivalence testing
        self.route_cache_enabled = route_cache
        self._route_cache: dict[tuple[int, int, bool], tuple[int, ...]] = {}
        self._route_cache_epoch = -1
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        #: mid-walk churn recoveries: lookups that routed around a
        #: departed node (resume-from-last-live or successor fallback)
        self.route_repairs = 0
        # --- replica-aware read path (repro.cache.replication) --------
        #: called as (key, serving_node) on every read-target resolution
        self.read_listener: Callable[[int, int], None] | None = None
        #: called with the node id on every membership removal
        self.removal_listener: Callable[[int], None] | None = None
        self._replica_sets: dict[int, list[int]] = {}
        self._replica_cursor: dict[int, int] = {}
        # --- suspect ranges (graceful degradation) ---------------------
        #: key intervals ``(predecessor, failed_node]`` whose owner died
        #: abruptly — its slice changed hands with *no* handoff, so an
        #: empty read there may be data loss rather than absence. Readers
        #: consult :meth:`is_suspect` to flag such answers as degraded
        #: instead of reporting loss silently; re-publishing or a healed
        #: rejoin repairs the range (:meth:`clear_suspects_covering`).
        self._suspect_ranges: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def create_node(self, node_id: int | None = None) -> DhtNode:
        """Add a node with ``node_id`` (random if omitted) to the ring.

        Chord join semantics: the new node's successor hands over the
        slice of keys the newcomer now owns (charged as ``dht.handoff``),
        so stored data stays reachable when joins land mid-run — without
        this, every join would silently orphan the slice it takes over.
        """
        if node_id is None:
            node_id = self._random_id()
        if node_id in self.nodes:
            raise DhtError(f"node id {node_id:x} already present")
        node = DhtNode(
            node_id,
            successor_count=self.successor_count,
            ring_cell=self._ring_cell if self.lazy_routing else None,
        )
        self._ring.add(node_id)
        self.nodes[node_id] = node
        self._stale = True
        self.membership_version += 1
        if len(self._ring) > 1:
            index = self._ring.index_of(node_id)
            successor_id = self._ring[(index + 1) % len(self._ring)]
            predecessor_id = self._ring[index - 1]
            source = self.nodes[successor_id]
            moved = 0
            source_store = source._store
            claimed = (
                [
                    key
                    for key in list(source_store.keys())
                    if in_interval(key, predecessor_id, node_id, inclusive_end=True)
                ]
                if source_store is not None
                else []
            )
            for key in claimed:
                for value in source.store.get(key):
                    node.store.put(key, value, identity=_identity(value))
                    moved += 1
                source.store.remove_key(key)
            if moved:
                self.transport.deliver(
                    DirectMessage(
                        source=successor_id,
                        target=node_id,
                        payload_bytes=self.cost_model.tuple_bytes(0),
                        category="dht.handoff",
                        copies=moved,
                    )
                )
        return node

    def _random_id(self) -> int:
        if self.compact_ids:
            return self.rng.getrandbits(64) << COMPACT_SHIFT
        return self.rng.getrandbits(160)

    def populate(self, count: int) -> list[DhtNode]:
        """Create ``count`` nodes with random ids and stabilize the ring.

        On an empty network this takes a bulk path: draw every id (same
        RNG sequence as the incremental path), sort once, and publish one
        snapshot — O(n log n) instead of the O(n^2) list shuffling that n
        insorts cost, which is what makes million-peer construction
        practical. With no stored data and no prior members the bulk path
        is observably identical to n ``create_node`` calls: no handoffs
        occur and nothing is metered either way.
        """
        if not self.nodes and count > 0:
            node_ids = [self._random_id() for _ in range(count)]
            if len(set(node_ids)) != count:
                raise DhtError("duplicate random node id during populate")
            cell = self._ring_cell if self.lazy_routing else None
            self.nodes = {
                nid: DhtNode(nid, successor_count=self.successor_count, ring_cell=cell)
                for nid in node_ids
            }
            self._ring.bulk_load(node_ids)
            self.membership_version += count
            self._stale = True
            self.stabilize()
            return [self.nodes[nid] for nid in node_ids]
        nodes = [self.create_node() for _ in range(count)]
        self.stabilize()
        return nodes

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        """Remove a node. A graceful leave hands its keys to the successor
        (one direct message per stored value, charged as ``dht.handoff``
        maintenance bandwidth); an ungraceful failure loses any data not
        replicated elsewhere."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        if not graceful and len(self._ring) > 1:
            # The dead node's slice ``(predecessor, node_id]`` moved to
            # its successor with no handoff: mark it suspect so empty
            # reads there surface as degraded, not as honest absence.
            index = self._ring.index_of(node_id)
            self._suspect_ranges.append((self._ring[index - 1], node_id))
        self._ring.discard(node_id)
        self._stale = True
        self.membership_version += 1
        if graceful and len(self._ring) and node._store is not None:
            successor = self._ring.responsible(node_id)
            target = self.nodes[successor]
            moved = 0
            for key, values in node.store.items():
                for value in values:
                    target.store.put(key, value, identity=_identity(value))
                    moved += 1
            if moved:
                self.transport.deliver(
                    DirectMessage(
                        source=node_id,
                        target=successor,
                        payload_bytes=self.cost_model.tuple_bytes(0),
                        category="dht.handoff",
                        copies=moved,
                    )
                )
        node.alive = False
        for key in list(self._replica_sets):
            holders = [nid for nid in self._replica_sets[key] if nid != node_id]
            if holders:
                self._replica_sets[key] = holders
            else:
                self.unregister_replicas(key)
        if self.removal_listener is not None:
            self.removal_listener(node_id)

    def stabilize(self) -> None:
        """Refresh every node's routing state from the current ring.

        Lazy mode (the default) publishes one immutable ring snapshot —
        an O(n) copy — and nodes derive their tables from it on first
        use. Eager mode rebuilds every node's tables right here, which is
        the historical reference behavior the lazy path is pinned
        against (see tests/test_dht_ring_equivalence.py).
        """
        if self.lazy_routing:
            self._stabilize_serial += 1
            self._ring_cell.snapshot = RingSnapshot(self._stabilize_serial, self._ring)
        else:
            ring = self._ring.tolist()
            for node in self.nodes.values():
                node.update_routing(ring)
        self._stale = False

    def _ensure_stable(self) -> None:
        if self._stale:
            self.stabilize()

    @property
    def size(self) -> int:
        return len(self._ring)

    def random_node_id(self) -> int:
        if not self._ring:
            raise DhtError("empty network")
        return self.rng.choice(self._ring)

    # ------------------------------------------------------------------
    # Suspect ranges
    # ------------------------------------------------------------------

    @property
    def suspect_ranges(self) -> list[tuple[int, int]]:
        """Current suspect intervals ``(predecessor, failed_node]`` (copy)."""
        return list(self._suspect_ranges)

    def is_suspect(self, key: int) -> bool:
        """Whether ``key`` lies in a range lost to an abrupt failure.

        True means an empty read under ``key`` is *untrustworthy*: the
        range's owner died without handing its slice off, so the data may
        have existed and been lost. Callers should report such answers as
        degraded/partial rather than as a clean zero-result.
        """
        key %= KEY_SPACE
        return any(
            in_interval(key, start, end, inclusive_end=True)
            for start, end in self._suspect_ranges
        )

    def clear_suspects_covering(self, key: int) -> int:
        """Repair: drop every suspect interval containing ``key``.

        Called when the range is made whole again — the failed node
        rejoined with its data restored, or an anti-entropy pass
        re-published the slice. Returns how many intervals were cleared.
        A rejoining node's own id always lies in its old interval, so
        ``clear_suspects_covering(node_id)`` repairs exactly its slice.
        """
        key %= KEY_SPACE
        before = len(self._suspect_ranges)
        self._suspect_ranges = [
            (start, end)
            for start, end in self._suspect_ranges
            if not in_interval(key, start, end, inclusive_end=True)
        ]
        return before - len(self._suspect_ranges)

    def clear_all_suspects(self) -> int:
        """Drop every suspect interval; returns how many there were."""
        count = len(self._suspect_ranges)
        self._suspect_ranges = []
        return count

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def owner_of(self, key: int) -> int:
        """Responsible node for ``key`` (oracle view, no messages charged)."""
        if not len(self._ring):
            raise DhtError("empty network")
        return self._ring.responsible(key)

    # ------------------------------------------------------------------
    # Replica-aware reads (driven by repro.cache.replication)
    # ------------------------------------------------------------------

    def register_replicas(self, key: int, node_ids: list[int]) -> None:
        """Declare that ``node_ids`` hold serveable copies of ``key``.

        Reads of ``key`` then rotate round-robin over the owner and these
        replicas, spreading a hot key's load across the successor set.
        """
        key %= KEY_SPACE
        holders = [node_id for node_id in node_ids if node_id in self.nodes]
        if holders:
            self._replica_sets[key] = holders
            self._replica_cursor.setdefault(key, 0)

    def unregister_replicas(self, key: int) -> list[int]:
        """Forget ``key``'s replica set; returns the former holders."""
        key %= KEY_SPACE
        self._replica_cursor.pop(key, None)
        return self._replica_sets.pop(key, [])

    def replica_nodes(self, key: int) -> list[int]:
        """Currently registered replica holders for ``key``."""
        return list(self._replica_sets.get(key % KEY_SPACE, ()))

    def serving_node(self, key: int, notify: bool = True) -> int:
        """The node that should answer the next read of ``key``.

        Without registered replicas this is the ring owner (the classic
        DHT read path). With replicas it rotates round-robin over owner +
        replicas. Every resolution is reported to ``read_listener`` — the
        hook the adaptive replication controller uses to find hot keys.
        """
        key %= KEY_SPACE
        owner = self.owner_of(key)
        replicas = self._replica_sets.get(key)
        target = owner
        if replicas:
            choices = [owner] + [nid for nid in replicas if nid != owner and nid in self.nodes]
            cursor = self._replica_cursor.get(key, 0)
            target = choices[cursor % len(choices)]
            self._replica_cursor[key] = (cursor + 1) % len(choices)
        if notify and self.read_listener is not None:
            self.read_listener(key, target)
        return target

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Route ``key`` from ``origin`` to its owner using local state only.

        With the route cache enabled (the default), repeated lookups of
        keys in the same owner region from the same origin replay the
        memoized hop path in O(1) instead of re-walking the ring — with
        identical hops, path, and owner, so all byte accounting derived
        from the result is unchanged (see the class docstring for the
        epoch invariant that keeps cached routes honest across churn).

        Raises :class:`DhtError` if routing does not converge or dead-ends
        (which, with stabilized tables, should never happen). A returned
        result always names a node that actually owns ``key`` — a dead-end
        is an error, never an answer from the wrong node.
        """
        self._ensure_stable()
        if not self._ring:
            raise DhtError("empty network")
        key %= KEY_SPACE
        if origin is None:
            origin = self.random_node_id()
        if origin not in self.nodes:
            raise NodeNotFoundError(f"unknown origin {origin:x}")
        if not self.route_cache_enabled:
            return self._walk(key, origin)
        if self._route_cache_epoch != self.membership_version:
            self._route_cache.clear()
            self._route_cache_epoch = self.membership_version
        owner = self._ring.responsible(key)
        cache_key = (origin, owner, key == owner)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            self.route_cache_hits += 1
            return LookupResult(key=key, owner=cached[-1], path=list(cached))
        result = self._walk(key, origin)
        self._route_cache[cache_key] = tuple(result.path)
        self.route_cache_misses += 1
        return result

    def _walk(self, key: int, origin: int) -> LookupResult:
        """The uncached hop-by-hop greedy walk behind :meth:`lookup`."""
        max_hops = MAX_HOPS_FACTOR * max(1, self.size).bit_length() + 8
        current = origin
        path = [current]
        for _ in range(max_hops):
            node = self.nodes[current]
            if node.owns(key):
                return LookupResult(key=key, owner=current, path=path)
            next_hop = node.closest_preceding(key)
            if next_hop is None or next_hop == current:
                next_hop = node.first_successor()
            if next_hop is None:
                raise DhtError(
                    f"routing dead-end at node {current:x} for key {key:x} "
                    f"after {len(path) - 1} hops: no finger or successor to "
                    "forward to",
                    key=key,
                    path=path,
                )
            current = next_hop
            path.append(current)
        raise DhtError(
            f"routing for key {key:x} did not converge in {max_hops} hops",
            key=key,
            path=path,
        )

    def iter_lookup(self, key: int, origin: int | None = None):
        """Hop-by-hop lookup generator: the event-driven variant of
        :meth:`lookup`.

        Yields the node id reached at each hop, starting with ``origin``
        and ending with the key's owner; the complete
        :class:`LookupResult` is the generator's return value
        (``StopIteration.value``). Routing state is re-read between
        yields, so a driver that advances the generator one simulator
        event at a time (e.g. the hybrid query engine) observes churn
        applied mid-lookup: if the node the query currently sits on — or
        a finger it planned to follow — has departed, the walk recovers
        through the last live node's successor list and counts a retry.

        The generator never stabilizes mid-walk; it routes over whatever
        tables exist, exactly as an in-flight query would. Raises
        :class:`DhtError` when routing dead-ends, when every node on the
        path has departed, or when the hop budget is exhausted.
        """
        if not self._ring:
            raise DhtError("empty network")
        key %= KEY_SPACE
        if origin is None:
            origin = self.random_node_id()
        if origin not in self.nodes:
            raise NodeNotFoundError(f"unknown origin {origin:x}")
        max_hops = MAX_HOPS_FACTOR * max(1, self.size).bit_length() + 8
        current = origin
        path = [current]
        retries = 0
        yield current
        for _ in range(max_hops):
            node = self.nodes.get(current)
            if node is None:
                # The node the query sits on departed mid-lookup: resume
                # from the most recent node on the path still alive.
                current = self._last_live(path, key)
                retries += 1
                self.route_repairs += 1
                path.append(current)
                yield current
                continue
            if node.owns(key):
                return LookupResult(key=key, owner=current, path=path, retries=retries)
            next_hop = node.closest_preceding(key)
            if next_hop is None or next_hop == current:
                next_hop = node.first_successor()
            if next_hop is None:
                raise DhtError(
                    f"routing dead-end at node {current:x} for key {key:x} "
                    f"after {len(path) - 1} hops: no finger or successor to "
                    "forward to",
                    key=key,
                    path=path,
                )
            if next_hop not in self.nodes:
                # Stale routing entry naming a departed node: fall back to
                # the first live successor (Chord's failure recovery).
                next_hop = self._first_live_successor(node, exclude={current})
                retries += 1
                self.route_repairs += 1
                if next_hop is None:
                    raise DhtError(
                        f"node {current:x} has no live successor to route "
                        f"around departures for key {key:x} after "
                        f"{len(path) - 1} hops",
                        key=key,
                        path=path,
                    )
            current = next_hop
            path.append(current)
            yield current
        raise DhtError(
            f"routing for key {key:x} did not converge in {max_hops} hops",
            key=key,
            path=path,
        )

    def _last_live(self, path: list[int], key: int) -> int:
        """Most recent node on ``path`` that is still a member."""
        for node_id in reversed(path):
            if node_id in self.nodes:
                return node_id
        raise DhtError(
            f"every node on the {len(path) - 1}-hop lookup path for key "
            f"{key:x} has departed",
            key=key,
            path=path,
        )

    def _first_live_successor(self, node: DhtNode, exclude: set[int]) -> int | None:
        for candidate in node.successors:
            if candidate in self.nodes and candidate not in exclude:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def ship_batch(
        self,
        source: int,
        target: int,
        payload_bytes: int,
        category: str = "pier.exchange",
        direct: bool = False,
    ) -> "BatchShipment":
        """Ship one tuple batch from node ``source`` to node ``target``.

        The streaming-exchange primitive: charges exactly what the atomic
        executor charges for the same payload over the same edge, so a
        query split into batches pays the same per-payload cost and only
        the per-message overhead scales with the batch count.

        * ``direct=False`` (rehash traffic): the batch routes through the
          DHT — one message per overlay hop, payload charged once plus a
          header per hop (:meth:`CostModel.routed_bytes`).
        * ``direct=True`` (query answers): one direct hop back to the
          query node, bypassing DHT routing, exactly like PIER's answer
          path.

        Raises :class:`DhtError` when routing to ``target`` breaks (the
        caller — an in-flight dataflow — decides whether to retry).
        """
        if direct:
            hops = 0 if source == target else 1
            delivery = self.transport.deliver(
                DirectMessage(
                    source=source,
                    target=target,
                    payload_bytes=payload_bytes,
                    category=category,
                )
            )
        else:
            hops = 0 if source == target else self.lookup(target, origin=source).hops
            delivery = self.transport.deliver(
                RoutedMessage(
                    source=source,
                    target=target,
                    payload_bytes=payload_bytes,
                    category=category,
                    hops=hops,
                )
            )
        return BatchShipment(hops=hops, messages=delivery.messages, bytes=delivery.bytes)

    def put(
        self,
        key_string: str,
        value: Any,
        origin: int | None = None,
        payload_bytes: int = 0,
        identity: Hashable | None = None,
        category: str = "dht.put",
    ) -> LookupResult:
        """Publish ``value`` under the hash of ``key_string``.

        Charges one message per routing hop plus one per extra replica, each
        carrying the payload.
        """
        key = hash_key(key_string)
        return self.put_raw(key, value, origin, payload_bytes, identity, category)

    def put_raw(
        self,
        key: int,
        value: Any,
        origin: int | None = None,
        payload_bytes: int = 0,
        identity: Hashable | None = None,
        category: str = "dht.put",
    ) -> LookupResult:
        """Publish under an already-hashed key. See :meth:`put`."""
        key %= KEY_SPACE
        result = self.lookup(key, origin)
        owner = self.nodes[result.owner]
        owner.store.put(key, value, identity=identity)
        self.transport.deliver(
            RoutedMessage(
                source=result.path[0] if result.path else result.owner,
                target=result.owner,
                payload_bytes=payload_bytes,
                category=category,
                hops=result.hops,
            )
        )
        # Replicate to successors of the owner (one direct hop each).
        replicas = owner.successors[: self.replication - 1]
        for replica_id in replicas:
            self.nodes[replica_id].store.put(key, value, identity=identity)
        if replicas:
            self.transport.deliver(
                DirectMessage(
                    source=result.owner,
                    target=replicas[0],
                    payload_bytes=payload_bytes,
                    category=category,
                    copies=len(replicas),
                )
            )
        # Keep adaptively-placed replicas coherent: they are registered as
        # serveable copies, so a publish must reach them too or rotated
        # reads would silently miss the new value.
        extra_holders = [
            node_id
            for node_id in self._replica_sets.get(key, ())
            if node_id in self.nodes and node_id != result.owner and node_id not in replicas
        ]
        for node_id in extra_holders:
            self.nodes[node_id].store.put(key, value, identity=identity)
        if extra_holders:
            self.transport.deliver(
                DirectMessage(
                    source=result.owner,
                    target=extra_holders[0],
                    payload_bytes=payload_bytes,
                    category="cache.replicate",
                    copies=len(extra_holders),
                )
            )
        return result

    def get(
        self,
        key_string: str,
        origin: int | None = None,
        category: str = "dht.get",
    ) -> list[Any]:
        """Fetch all values published under ``key_string``.

        Raises :class:`KeyNotFoundError` when nothing is stored there.
        """
        key = hash_key(key_string)
        return self.get_raw(key, origin, category)

    def get_raw(self, key: int, origin: int | None = None, category: str = "dht.get") -> list[Any]:
        """Fetch by raw ring key. See :meth:`get`.

        Replica-aware: when a replica set is registered for ``key`` the
        read routes to the next holder in rotation instead of always
        hitting the owner (falling back to the owner if the chosen
        replica lost its copy).
        """
        key %= KEY_SPACE
        self._ensure_stable()
        target = self.serving_node(key)
        result = self.lookup(target if target != self.owner_of(key) else key, origin)
        values = self.nodes[result.owner].store.get(key)
        if not values and result.owner != self.owner_of(key):
            # Stale replica registration: serve from the owner instead.
            result = self.lookup(key, origin)
            values = self.nodes[result.owner].store.get(key)
        self.transport.deliver(
            RoutedMessage(
                source=result.path[0] if result.path else result.owner,
                target=result.owner,
                payload_bytes=0,
                category=category,
                hops=result.hops,
            )
        )
        if not values:
            raise KeyNotFoundError(f"no values under key {key:x}")
        return values

    def iter_get_raw(self, key: int, origin: int | None = None, category: str = "dht.get"):
        """Event-driven variant of :meth:`get_raw`: yields each routing hop.

        Replica-aware like :meth:`get_raw`, including the stale-replica
        owner fallback (which re-routes and therefore costs extra yielded
        hops). ``(values, result)`` is the generator's return value
        (``StopIteration.value``). Raises :class:`KeyNotFoundError` when
        nothing is stored under ``key`` and :class:`DhtError` when routing
        breaks beyond repair mid-walk.
        """
        key %= KEY_SPACE
        target = self.serving_node(key)
        result = yield from self.iter_lookup(
            target if target != self.owner_of(key) else key, origin
        )
        values = self.nodes[result.owner].store.get(key)
        if not values and result.owner != self.owner_of(key):
            # Stale replica registration: re-route to the ring owner.
            result = yield from self.iter_lookup(key, origin)
            values = self.nodes[result.owner].store.get(key)
        self.transport.deliver(
            RoutedMessage(
                source=result.path[0] if result.path else result.owner,
                target=result.owner,
                payload_bytes=0,
                category=category,
                hops=result.hops,
            )
        )
        if not values:
            raise KeyNotFoundError(f"no values under key {key:x}")
        return values, result

    def get_local(self, node_id: int, key: int) -> list[Any]:
        """Read a node's local store directly (no messages)."""
        node = self.nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        return node.store.get(key)

    # ------------------------------------------------------------------
    # Local-store boundary
    #
    # The public surface for everything outside repro.dht that needs a
    # node's storage: replica placement (repro.cache.replication), PIER
    # temp-tuple stashes (executor/dataflow spill sinks), and catalog
    # scans. Nothing outside this package touches DhtNode internals —
    # tests/test_boundary_lint.py enforces it — which is what lets the
    # storage backend move behind a transport without engine rewrites.
    # ------------------------------------------------------------------

    def put_local(
        self,
        node_id: int,
        key: int,
        value: Any,
        identity: Hashable | None = None,
        missing_ok: bool = False,
    ) -> bool:
        """Write directly into ``node_id``'s store (no messages charged).

        Returns True when stored. With ``missing_ok`` a departed node is
        reported as False instead of raising — the idiom for spill sinks
        racing churn.
        """
        node = self.nodes.get(node_id)
        if node is None:
            if missing_ok:
                return False
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        node.store.put(key, value, identity=identity)
        return True

    def remove_local(self, node_id: int, key: int, missing_ok: bool = True) -> int:
        """Drop every value under ``key`` at ``node_id``; returns count."""
        node = self.nodes.get(node_id)
        if node is None:
            if missing_ok:
                return 0
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        return node.store.remove_key(key)

    def local_contains(self, node_id: int, key: int) -> bool:
        """Whether ``node_id`` currently holds any value under ``key``."""
        node = self.nodes.get(node_id)
        return node is not None and node.store.contains(key)

    def set_local_expiry(self, node_id: int, key: int, expires_at: float) -> None:
        """Stamp ``key``'s values at ``node_id`` with an expiry time."""
        node = self.nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        node.store.set_expiry(key, expires_at)

    def purge_expired_local(self, node_id: int, now: float) -> int:
        """Run ``node_id``'s local TTL sweep; returns purged count (0 if
        the node has departed)."""
        node = self.nodes.get(node_id)
        if node is None:
            return 0
        return len(node.store.purge_expired(now))

    def stored_items(self, node_id: int | None = None):
        """Iterate ``(node_id, key, values)`` over local stores.

        With ``node_id`` the iteration covers one node; otherwise every
        member. An oracle-style scan for catalogs and tests — not a data
        path (nothing is charged).
        """
        if node_id is not None:
            node = self.nodes.get(node_id)
            if node is None:
                raise NodeNotFoundError(f"unknown node {node_id:x}")
            members = ((node_id, node),)
        else:
            members = self.nodes.items()
        for member_id, node in members:
            store = node._store
            if store is None:
                continue
            for key, values in store.items():
                yield member_id, key, values

    def successors_of(self, node_id: int) -> list[int]:
        """The node's current successor list (copy), for replica placement."""
        node = self.nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"unknown node {node_id:x}")
        return list(node.successors)

    def total_stored(self) -> int:
        # _store stays None until a node stores something; skipping the
        # untouched ones keeps this scan allocation-free at scale.
        return sum(
            len(node._store) for node in self.nodes.values() if node._store is not None
        )


def _identity(value: Any) -> Hashable:
    """Best-effort dedup handle for replica handoff."""
    try:
        hash(value)
        return value
    except TypeError:
        return id(value)
