"""Sorted ring backing and stabilize snapshots.

Two pieces that make million-peer rings affordable:

* :class:`Ring` — the network's sorted membership. The default backing is
  a plain list of full-width 160-bit ids (byte-compatible with the
  historical ``list[int]`` ring, so golden digests are untouched). With
  ``compact=True`` the backing is a sorted ``array('Q')`` of 64-bit words:
  node ids are then required to be exact multiples of ``2**96`` (the
  network draws them as ``getrandbits(64) << 96``), which keeps the full
  160-bit keyspace semantics — keys still land anywhere in ``[0, 2**160)``
  — while membership costs 8 bytes per peer instead of ~56. Every lookup
  primitive (owner bisect, successor list, finger targets) is implemented
  against both backings with the *same* algorithm as
  :mod:`repro.dht.keyspace`, translated through the monotone bijection
  ``id = q << 96``, so results are byte-identical.

* :class:`RingSnapshot` — an immutable copy of the ring published by
  ``DhtNetwork.stabilize``. Lazy per-node routing (see
  :class:`repro.dht.node.DhtNode`) derives fingers/successors/predecessor
  from the snapshot on first use instead of materializing 160-entry
  finger scans for every node on every stabilize. Because the snapshot is
  frozen at stabilize time, stale-table churn semantics are preserved
  exactly: nodes that joined after the snapshot see empty tables until
  the next stabilize, and departed nodes linger in survivors' tables —
  precisely what the eager ``update_routing`` path produces.
"""

from __future__ import annotations

import bisect
import sys
from array import array
from typing import Iterable, Iterator

from repro.common.ids import KEY_BITS, KEY_SPACE

#: compact node ids are 64-bit draws shifted into the top bits of the
#: 160-bit keyspace; the low 96 bits are always zero
COMPACT_SHIFT = 96
_COMPACT_MASK = (1 << COMPACT_SHIFT) - 1


def _to_word(node_id: int) -> int:
    """The 64-bit ring word for a compact node id (exact translation)."""
    if node_id & _COMPACT_MASK:
        raise ValueError(
            f"compact ring requires ids that are multiples of 2**{COMPACT_SHIFT}; "
            f"got {node_id:#x}"
        )
    return node_id >> COMPACT_SHIFT


class Ring:
    """Sorted membership ring; list-backed or ``array('Q')``-backed.

    Exposes sequence access (``len``, indexing, iteration — always in
    full-width ids) plus the bisect primitives the network needs. The
    compact backing stores 64-bit words; index arithmetic is unchanged
    because ``id = word << 96`` is a strictly monotone bijection, so
    every bisect position computed on words equals the position the
    full-width list would produce.
    """

    __slots__ = ("compact", "_ids")

    def __init__(self, compact: bool = False, ids: Iterable[int] = ()):
        self.compact = compact
        if compact:
            self._ids = array("Q", sorted(_to_word(i) for i in ids))
        else:
            self._ids = sorted(ids)

    # -- sequence surface (full-width ids) -----------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index: int) -> int:
        value = self._ids[index]
        return value << COMPACT_SHIFT if self.compact else value

    def __iter__(self) -> Iterator[int]:
        if self.compact:
            return (word << COMPACT_SHIFT for word in self._ids)
        return iter(self._ids)

    def __contains__(self, node_id: int) -> bool:
        index = self.index_of(node_id)
        return index < len(self._ids) and self[index] == node_id

    def tolist(self) -> list[int]:
        """The membership as a sorted list of full-width ids (copy)."""
        return list(self)

    # -- mutation ------------------------------------------------------

    def add(self, node_id: int) -> None:
        if self.compact:
            bisect.insort(self._ids, _to_word(node_id))
        else:
            bisect.insort(self._ids, node_id)

    def discard(self, node_id: int) -> None:
        index = self.index_of(node_id)
        if index < len(self._ids) and self[index] == node_id:
            del self._ids[index]

    def bulk_load(self, ids: Iterable[int]) -> None:
        """Replace the membership with ``ids``, sorting once.

        The fast path behind ``DhtNetwork.populate``: one sort instead of
        n insorts (which is O(n^2) in list moves at a million peers).
        """
        if self.compact:
            self._ids = array("Q", sorted(_to_word(i) for i in ids))
        else:
            self._ids = sorted(ids)

    # -- bisect primitives (identical to repro.dht.keyspace) -----------

    def index_of(self, node_id: int) -> int:
        """``bisect_left`` position of ``node_id`` in the sorted ring."""
        if self.compact:
            return bisect.bisect_left(self._ids, node_id >> COMPACT_SHIFT)
        return bisect.bisect_left(self._ids, node_id)

    def responsible(self, key: int) -> int:
        """The node responsible for ``key`` — its clockwise successor.

        Same algorithm as :func:`repro.dht.keyspace.responsible_node`;
        for the compact backing the bisect runs on words with
        ``ceil(key / 2**96)``, since ``(w << 96) >= key  <=>
        w >= ceil(key / 2**96)``.
        """
        ids = self._ids
        if not ids:
            raise ValueError("empty ring")
        key %= KEY_SPACE
        if self.compact:
            index = bisect.bisect_left(ids, (key + _COMPACT_MASK) >> COMPACT_SHIFT)
            if index == len(ids):
                return ids[0] << COMPACT_SHIFT
            return ids[index] << COMPACT_SHIFT
        index = bisect.bisect_left(ids, key)
        if index == len(ids):
            return ids[0]
        return ids[index]

    def successor_list(self, node_id: int, count: int) -> list[int]:
        """The ``count`` nodes clockwise after ``node_id`` (excluding it).

        Same algorithm as :func:`repro.dht.keyspace.successor_list`.
        """
        ids = self._ids
        if not ids:
            return []
        if self.compact:
            index = bisect.bisect_right(ids, node_id >> COMPACT_SHIFT)
        else:
            index = bisect.bisect_right(ids, node_id)
        n = len(ids)
        result = [self[(index + offset) % n] for offset in range(min(count, n - 1))]
        return [node for node in result if node != node_id]

    def predecessor_of(self, node_id: int) -> int | None:
        """The node counterclockwise before ``node_id`` (None if alone)."""
        if len(self._ids) <= 1:
            return None
        return self[self.index_of(node_id) - 1]

    def fingers_of(self, node_id: int) -> list[int]:
        """The deduplicated finger table for ``node_id`` on this ring.

        Same construction as ``DhtNode.update_routing``: the successor of
        ``node_id + 2**i`` for each ``i``, with consecutive duplicates
        dropped.
        """
        fingers: list[int] = []
        previous = None
        responsible = self.responsible
        for index in range(KEY_BITS):
            owner = responsible((node_id + (1 << index)) % KEY_SPACE)
            if owner != previous:
                fingers.append(owner)
                previous = owner
        return fingers

    def backing_bytes(self) -> int:
        """Heap bytes held by the sorted backing (ids counted separately)."""
        return sys.getsizeof(self._ids)


class RingSnapshot:
    """Immutable ring membership published by one stabilize round.

    Shared by every node in the network: lazy routing reads fingers,
    successors, and predecessor out of the snapshot keyed by ``version``,
    so one O(n) copy per stabilize replaces n full finger rebuilds.
    """

    __slots__ = ("version", "_ring")

    def __init__(self, version: int, ring: Ring):
        self.version = version
        self._ring = Ring(compact=ring.compact, ids=ring)

    def __len__(self) -> int:
        return len(self._ring)

    def contains(self, node_id: int) -> bool:
        return node_id in self._ring

    def fingers_of(self, node_id: int) -> list[int]:
        return self._ring.fingers_of(node_id)

    def successors_of(self, node_id: int, count: int) -> list[int]:
        return self._ring.successor_list(node_id, count)

    def predecessor_of(self, node_id: int) -> int | None:
        return self._ring.predecessor_of(node_id)

    def backing_bytes(self) -> int:
        return self._ring.backing_bytes()


class RingCell:
    """One mutable slot holding the network's latest :class:`RingSnapshot`.

    Nodes keep a reference to the cell (not to any particular snapshot),
    so publishing a new snapshot is a single attribute store and nodes
    lazily notice the version change on their next routing read.
    """

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: RingSnapshot | None = None


def ring_state_bytes(network) -> int:
    """Deep heap-byte accounting for a network's ring + routing state.

    Counts what scales with membership: the nodes dict, each
    :class:`~repro.dht.node.DhtNode` (plus its id int and any
    materialized routing lists and their entry ints), the sorted ring
    backing, and the published snapshot backing. Stored data is excluded
    — this is the *ring state* figure the capacity plan divides by peer
    count.
    """
    getsizeof = sys.getsizeof
    total = getsizeof(network.nodes)
    ring = network._ring
    total += getsizeof(ring) + ring.backing_bytes()
    cell = getattr(network, "_ring_cell", None)
    if cell is not None and cell.snapshot is not None:
        total += getsizeof(cell.snapshot) + cell.snapshot.backing_bytes()
    for node_id, node in network.nodes.items():
        total += getsizeof(node) + getsizeof(node_id)
        for table in (node._fingers, node._successors):
            if table is not None:
                # Entry ids are counted once via the nodes dict; only the
                # list cells themselves are new weight.
                total += getsizeof(table)
    return total


def bytes_per_peer(network) -> float:
    """``ring_state_bytes`` divided by membership size."""
    size = len(network.nodes)
    return ring_state_bytes(network) / size if size else 0.0
