"""Ring arithmetic shared by DHT nodes and the network facade."""

from __future__ import annotations

import bisect
from collections.abc import Sequence

from repro.common.ids import KEY_BITS, KEY_SPACE


def finger_start(node_id: int, index: int) -> int:
    """Start of finger ``index`` for ``node_id``: (n + 2^index) mod 2^160."""
    if not 0 <= index < KEY_BITS:
        raise ValueError(f"finger index {index} outside [0, {KEY_BITS})")
    return (node_id + (1 << index)) % KEY_SPACE


def responsible_node(sorted_ids: Sequence[int], key: int) -> int:
    """The node responsible for ``key``: its successor on the ring.

    ``sorted_ids`` must be sorted ascending. Chord assigns each key to the
    first node clockwise from it (wrapping past zero).
    """
    if not sorted_ids:
        raise ValueError("empty ring")
    key %= KEY_SPACE
    index = bisect.bisect_left(sorted_ids, key)
    if index == len(sorted_ids):
        return sorted_ids[0]
    return sorted_ids[index]


def successor_list(sorted_ids: Sequence[int], node_id: int, count: int) -> list[int]:
    """The ``count`` nodes clockwise after ``node_id`` (excluding itself)."""
    if not sorted_ids:
        return []
    index = bisect.bisect_right(sorted_ids, node_id)
    result: list[int] = []
    n = len(sorted_ids)
    for offset in range(min(count, n - 1)):
        result.append(sorted_ids[(index + offset) % n])
    # Drop self if the ring has wrapped all the way around.
    return [node for node in result if node != node_id]
