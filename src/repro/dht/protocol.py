"""Event-driven DHT protocol over the simulated network.

The synchronous :class:`~repro.dht.network.DhtNetwork` resolves lookups
instantly and charges per-hop costs analytically; this module provides the
message-level counterpart used to study *timing*: every hop is a real
:class:`~repro.sim.network.Message` delivered through the simulator with
sampled latency, requests can time out and retry through successors, and
churn may strike mid-lookup — the operating regime Bamboo [Rhea et al.]
was built for and the substrate the deployment's DHT latencies rest on.

The protocol is iterative (the querier drives each hop), like Bamboo's
default and like PIER's deployment:

    querier -> node A:   FIND_OWNER(key)
    node A  -> querier:  NEXT_HOP(B)          (A's closest_preceding)
    querier -> node B:   FIND_OWNER(key)
    node B  -> querier:  OWNER                (B owns the key)

Timeouts re-issue the step to the last known good node's next-best
candidate; a lookup fails only when no candidates remain or the hop budget
is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.ids import KEY_SPACE
from repro.dht.network import DhtNetwork
from repro.sim.engine import Event, Simulator
from repro.sim.network import Message, SimNetwork

FIND_OWNER = "dht.find_owner"
NEXT_HOP = "dht.next_hop"
OWNER = "dht.owner"

DEFAULT_TIMEOUT = 2.0
DEFAULT_MAX_HOPS = 64


@dataclass
class AsyncLookup:
    """One in-flight lookup and its final outcome."""

    key: int
    origin: int
    started_at: float
    finished_at: float | None = None
    owner: int | None = None
    hops: int = 0
    retries: int = 0
    failed: bool = False
    #: invoked exactly once on completion (success or failure)
    callback: Callable[["AsyncLookup"], None] | None = None

    @property
    def latency(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class DhtProtocol:
    """Message-level iterative lookups over a DhtNetwork's routing state.

    Wraps an existing :class:`DhtNetwork` (which owns membership, finger
    tables and storage) and runs its lookups as simulator messages. Node
    failures are modelled by partitioning the address in the SimNetwork;
    requests to failed nodes silently vanish and trigger timeout recovery.
    """

    def __init__(
        self,
        dht: DhtNetwork,
        sim: Simulator,
        net: SimNetwork,
        timeout: float = DEFAULT_TIMEOUT,
        max_hops: int = DEFAULT_MAX_HOPS,
    ):
        self.dht = dht
        self.sim = sim
        self.net = net
        self.timeout = timeout
        self.max_hops = max_hops
        self.completed: list[AsyncLookup] = []
        for node_id in self.dht.nodes:
            self.net.register(node_id, self._handle)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Silently kill a node: it stops answering but stays in others'
        (now stale) routing tables — the hard churn case."""
        self.net.partition(node_id)

    def recover_node(self, node_id: int) -> None:
        self.net.heal(node_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(
        self,
        key: int,
        origin: int | None = None,
        callback: Callable[[AsyncLookup], None] | None = None,
    ) -> AsyncLookup:
        """Start an asynchronous lookup; returns its (live) record.

        Drive the simulator (``sim.run()``) to make progress; the record's
        ``owner``/``failed`` fields are set on completion and ``callback``
        fires once.
        """
        key %= KEY_SPACE
        if origin is None:
            origin = self.dht.random_node_id()
        lookup = AsyncLookup(
            key=key, origin=origin, started_at=self.sim.now, callback=callback
        )
        self._step(lookup, target=origin, excluded=set())
        return lookup

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _step(self, lookup: AsyncLookup, target: int, excluded: set[int]) -> None:
        if lookup.hops >= self.max_hops:
            self._finish(lookup, owner=None)
            return
        lookup.hops += 1
        pending: dict[str, Any] = {"answered": False}
        request = Message(
            source=lookup.origin,
            destination=target,
            kind=FIND_OWNER,
            payload={"key": lookup.key, "lookup": lookup, "pending": pending},
            size_bytes=self.dht.cost_model.message_bytes(20),
        )
        timer: Event = self.sim.schedule(
            self.timeout, lambda: self._on_timeout(lookup, target, excluded, pending)
        )
        pending["timer"] = timer
        self.net.send(request)

    def _handle(self, message: Message) -> None:
        """Per-node message dispatch: requests node-side, replies querier-side."""
        if message.kind == FIND_OWNER:
            self._handle_request(message)
        elif message.kind in (OWNER, NEXT_HOP):
            self._handle_reply(message)

    def _handle_request(self, message: Message) -> None:
        node = self.dht.nodes.get(message.destination)
        if node is None:
            return  # departed between routing-table refreshes
        payload = message.payload
        key = payload["key"]
        if node.owns(key):
            kind, value = OWNER, message.destination
        else:
            next_hop = node.closest_preceding(key)
            if next_hop is None or next_hop == node.node_id:
                next_hop = node.first_successor()
            if next_hop is None:
                kind, value = OWNER, message.destination
            else:
                kind, value = NEXT_HOP, next_hop
        reply = Message(
            source=message.destination,
            destination=message.source,
            kind=kind,
            payload={
                "value": value,
                "lookup": payload["lookup"],
                "pending": payload["pending"],
            },
            size_bytes=self.dht.cost_model.message_bytes(24),
        )
        self.net.send(reply)

    def _handle_reply(self, message: Message) -> None:
        payload = message.payload
        pending = payload["pending"]
        if pending.get("answered"):
            return  # duplicate / late reply after timeout recovery
        pending["answered"] = True
        pending["timer"].cancel()
        lookup: AsyncLookup = payload["lookup"]
        if message.kind == OWNER:
            self._finish(lookup, owner=payload["value"])
        else:
            self._step(lookup, target=payload["value"], excluded=set())

    def _on_timeout(
        self, lookup: AsyncLookup, target: int, excluded: set[int], pending: dict
    ) -> None:
        if pending.get("answered"):
            return
        pending["answered"] = True
        lookup.retries += 1
        excluded = excluded | {target}
        fallback = self._fallback_candidate(lookup, excluded)
        if fallback is None:
            self._finish(lookup, owner=None)
            return
        self._step(lookup, target=fallback, excluded=excluded)

    def _fallback_candidate(self, lookup: AsyncLookup, excluded: set[int]) -> int | None:
        """Next-best alive-looking node from the origin's routing state."""
        origin_node = self.dht.nodes.get(lookup.origin)
        if origin_node is None:
            return None
        for candidate in origin_node.successors + origin_node.fingers:
            if candidate not in excluded and candidate in self.dht.nodes:
                return candidate
        return None

    def _finish(self, lookup: AsyncLookup, owner: int | None) -> None:
        lookup.finished_at = self.sim.now
        lookup.owner = owner
        lookup.failed = owner is None
        self.completed.append(lookup)
        if lookup.callback is not None:
            lookup.callback(lookup)
