"""Per-node key/value storage.

A DHT node stores a multimap from 160-bit keys to opaque values. PIER uses
this for base tuples (Item, Inverted, InvertedCache) and for temporary
state created during query execution. Values are kept insertion-ordered
and deduplicated by equality, mirroring set semantics of a relation with a
primary key.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator


class LocalStore:
    """Multimap store on one DHT node, deduplicated per key.

    Keys can carry an optional expiry time, used by the adaptive
    replication controller to make replica copies age out without a
    network round trip (the replica holder drops them locally).

    Slotted, with the expiry map allocated lazily: most stores in a
    large simulated network never see an expiry, so at a million peers
    the per-node cost is one object plus one dict.
    """

    __slots__ = ("_data", "_expiry")

    def __init__(self) -> None:
        self._data: dict[int, dict[Hashable, Any]] = {}
        self._expiry: dict[int, float] | None = None

    def put(self, key: int, value: Any, identity: Hashable | None = None) -> bool:
        """Store ``value`` under ``key``.

        ``identity`` is the dedup handle (defaults to the value itself,
        which must then be hashable). Returns True if the value was new.
        """
        bucket = self._data.setdefault(key, {})
        handle = identity if identity is not None else value
        if handle in bucket:
            return False
        bucket[handle] = value
        return True

    def get(self, key: int) -> list[Any]:
        """All values stored under ``key`` (empty list if none)."""
        bucket = self._data.get(key)
        if not bucket:
            return []
        return list(bucket.values())

    def remove_key(self, key: int) -> int:
        """Drop all values under ``key``; returns how many were removed."""
        if self._expiry is not None:
            self._expiry.pop(key, None)
        bucket = self._data.pop(key, None)
        return len(bucket) if bucket else 0

    def set_expiry(self, key: int, expires_at: float) -> None:
        """Mark ``key`` to be dropped by ``purge_expired`` at ``expires_at``."""
        if key in self._data:
            if self._expiry is None:
                self._expiry = {}
            self._expiry[key] = expires_at

    def expiry_of(self, key: int) -> float | None:
        """When ``key`` expires, or None if it has no expiry."""
        return self._expiry.get(key) if self._expiry is not None else None

    def purge_expired(self, now: float) -> list[int]:
        """Drop every key whose expiry is <= ``now``; returns those keys."""
        if not self._expiry:
            return []
        expired = [key for key, at in self._expiry.items() if at <= now]
        for key in expired:
            self.remove_key(key)
        return expired

    def contains(self, key: int) -> bool:
        return key in self._data and bool(self._data[key])

    def keys(self) -> Iterator[int]:
        return iter(self._data.keys())

    def items(self) -> Iterator[tuple[int, list[Any]]]:
        for key, bucket in self._data.items():
            yield key, list(bucket.values())

    def __len__(self) -> int:
        """Total number of stored values across all keys."""
        return sum(len(bucket) for bucket in self._data.values())

    def clear(self) -> None:
        self._data.clear()
        self._expiry = None
