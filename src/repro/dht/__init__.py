"""Chord-style DHT substrate.

PIER (and therefore PIERSearch) runs over a DHT. The paper's deployment
used Bamboo; any DHT exposing put/get/lookup with O(log N)-hop routing
satisfies PIER's contract and the analytical model's ``log N`` query cost,
so we implement a Chord-style ring: 160-bit keyspace, finger tables,
successor lists, replication to successors, and explicit hop accounting.
"""

from repro.dht.keyspace import finger_start, responsible_node
from repro.dht.node import DhtNode
from repro.dht.network import DhtNetwork, LookupResult
from repro.dht.storage import LocalStore
from repro.dht.churn import ChurnProcess
from repro.dht.protocol import AsyncLookup, DhtProtocol

__all__ = [
    "finger_start",
    "responsible_node",
    "DhtNode",
    "DhtNetwork",
    "LookupResult",
    "LocalStore",
    "ChurnProcess",
    "AsyncLookup",
    "DhtProtocol",
]
