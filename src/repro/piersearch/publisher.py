"""The PIERSearch Publisher (Section 3.1).

For each shared item the Publisher generates one Item tuple, indexed by
fileID, plus one Inverted tuple per keyword, indexed by keyword — so all
Inverted tuples for a keyword land on the same DHT node. With the
InvertedCache option the Inverted table is replaced by
InvertedCache(keyword, fileID, fulltext), caching the filename redundantly
with every posting entry so queries can be answered at a single site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.units import CostModel
from repro.dht.network import DhtNetwork
from repro.pier.catalog import Catalog, TableHandle
from repro.pier.schema import (
    INVERTED_CACHE_SCHEMA,
    INVERTED_SCHEMA,
    ITEM_SCHEMA,
    Row,
)
from repro.piersearch.tokenizer import extract_keywords


def compute_file_id(filename: str, filesize: int, ip_address: str, port: int) -> str:
    """Unique file identifier: hash over the item's other fields."""
    digest = hashlib.sha1(f"{filename}|{filesize}|{ip_address}|{port}".encode()).hexdigest()
    return digest


@dataclass
class PublishReceipt:
    """What publishing one file cost."""

    file_id: str
    keywords: tuple[str, ...]
    tuples_published: int
    bytes: int
    messages: int

    @property
    def kilobytes(self) -> float:
        return self.bytes / 1024


class Publisher:
    """Publishes shared files into the DHT as PIER tuples."""

    def __init__(
        self,
        network: DhtNetwork,
        catalog: Catalog,
        inverted_cache: bool = False,
        cost_model: CostModel | None = None,
    ):
        self.network = network
        self.catalog = catalog
        self.inverted_cache = inverted_cache
        self.cost_model = cost_model or network.cost_model
        self.items: TableHandle = self._ensure(ITEM_SCHEMA.name, ITEM_SCHEMA)
        self.inverted: TableHandle = self._ensure(INVERTED_SCHEMA.name, INVERTED_SCHEMA)
        self.cache: TableHandle = self._ensure(
            INVERTED_CACHE_SCHEMA.name, INVERTED_CACHE_SCHEMA
        )
        self.published_files = 0
        self.published_bytes = 0

    def _ensure(self, name: str, schema) -> TableHandle:
        if name in self.catalog:
            return self.catalog.table(name)
        return self.catalog.register(schema)

    def publish_file(
        self,
        filename: str,
        filesize: int,
        ip_address: str,
        port: int,
        origin: int | None = None,
    ) -> PublishReceipt:
        """Publish one shared file; returns the receipt with costs.

        Files whose names contain no indexable keyword (all stop words)
        still get an Item tuple but no posting entries, and therefore can
        never be found by keyword search — same as the real system.
        """
        file_id = compute_file_id(filename, filesize, ip_address, port)
        keywords = tuple(extract_keywords(filename))
        meter_before = self.network.meter.snapshot()

        item_row: Row = {
            "fileID": file_id,
            "filename": filename,
            "filesize": filesize,
            "ipAddress": ip_address,
            "port": port,
        }
        self.items.publish(
            item_row,
            origin=origin,
            payload_bytes=self.cost_model.item_tuple_bytes(filename),
            category="publish.Item",
        )
        tuples = 1
        for keyword in keywords:
            if self.inverted_cache:
                cache_row: Row = {
                    "keyword": keyword,
                    "fileID": file_id,
                    "fulltext": filename,
                }
                self.cache.publish(
                    cache_row,
                    origin=origin,
                    payload_bytes=self.cost_model.inverted_cache_tuple_bytes(keyword, filename),
                    category="publish.InvertedCache",
                )
            else:
                inverted_row: Row = {"keyword": keyword, "fileID": file_id}
                self.inverted.publish(
                    inverted_row,
                    origin=origin,
                    payload_bytes=self.cost_model.inverted_tuple_bytes(keyword),
                    category="publish.Inverted",
                )
            tuples += 1

        meter_after = self.network.meter.snapshot()
        byte_cost = meter_after.bytes - meter_before.bytes
        message_cost = meter_after.messages - meter_before.messages
        self.published_files += 1
        self.published_bytes += byte_cost
        return PublishReceipt(
            file_id=file_id,
            keywords=keywords,
            tuples_published=tuples,
            bytes=byte_cost,
            messages=message_cost,
        )

    @property
    def average_bytes_per_file(self) -> float:
        """Mean publish cost per file so far (the paper reports ~3.5 KB)."""
        if self.published_files == 0:
            return 0.0
        return self.published_bytes / self.published_files
