"""PIERSearch: DHT-based keyword search built on PIER (Section 3).

The :class:`~repro.piersearch.publisher.Publisher` turns shared files into
Item / Inverted / InvertedCache tuples and publishes them into the DHT;
the :class:`~repro.piersearch.search.SearchEngine` turns keyword queries
into PIER plans and executes them.
"""

from repro.piersearch.tokenizer import STOP_WORDS, extract_keywords, tokenize
from repro.piersearch.publisher import PublishReceipt, Publisher
from repro.piersearch.search import SearchEngine, SearchResult

__all__ = [
    "STOP_WORDS",
    "extract_keywords",
    "tokenize",
    "PublishReceipt",
    "Publisher",
    "SearchEngine",
    "SearchResult",
]
