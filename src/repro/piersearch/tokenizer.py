"""Filename tokenization and stop words.

Keywords describing an item are the terms of its filename (Section 3.1).
Stop words — including filesharing-specific ones like "mp3" that appear in
almost every filename — are not indexed, exactly as the paper notes.
"""

from __future__ import annotations

import re

# Generic English stop words plus the filesharing-specific ones the paper
# calls out ("MP3", "the"). Extensions are stripped separately but also
# listed here in case they appear inside names.
STOP_WORDS: frozenset[str] = frozenset(
    {
        "the", "a", "an", "of", "and", "or", "to", "in", "on", "at", "by",
        "for", "with", "from", "feat", "ft", "vs", "mix", "remix",
        "mp3", "avi", "mpg", "mpeg", "wav", "wma", "ogg", "zip", "rar",
        "exe", "iso", "jpg", "gif", "txt", "pdf", "doc",
    }
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")
_MIN_TOKEN_LENGTH = 2


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens, in order."""
    return _TOKEN_PATTERN.findall(text.lower())


def extract_keywords(filename: str) -> list[str]:
    """Indexable keywords of ``filename``: tokens minus stop words.

    Order is preserved and duplicates are removed (an Inverted tuple's
    primary key is (keyword, fileID), so each keyword indexes a file once).
    Single-character tokens are dropped as noise.
    """
    keywords: list[str] = []
    seen: set[str] = set()
    for token in tokenize(filename):
        if len(token) < _MIN_TOKEN_LENGTH:
            continue
        if token in STOP_WORDS:
            continue
        if token in seen:
            continue
        seen.add(token)
        keywords.append(token)
    return keywords


def matches_query(filename: str, terms: list[str]) -> bool:
    """Conjunctive keyword match: every term must appear in the filename.

    Gnutella servents match query terms against filenames with substring
    semantics per token; we use the same rule everywhere so the Gnutella
    simulator and PIERSearch return identical answer sets for a corpus.
    """
    haystack = filename.lower()
    return all(term.lower() in haystack for term in terms)
