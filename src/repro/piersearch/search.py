"""The PIERSearch Search Engine (Section 3.2).

Given a keyword query, the Search Engine builds the corresponding PIER
plan (a chain of posting-list joins, or a single-site InvertedCache scan)
and executes it through the distributed executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.dht.network import DhtNetwork
from repro.pier.catalog import Catalog
from repro.pier.executor import DistributedExecutor
from repro.pier.optimizer import CostBasedOptimizer, OptimizerConfig
from repro.pier.planner import KeywordPlanner
from repro.pier.query import DistributedPlan, JoinStrategy, QueryStats
from repro.pier.schema import Row
from repro.piersearch.tokenizer import extract_keywords


@dataclass
class SearchResult:
    """Answer to one keyword query."""

    terms: tuple[str, ...]
    items: list[Row]
    stats: QueryStats

    @property
    def filenames(self) -> list[str]:
        return [item["filename"] for item in self.items]

    def __len__(self) -> int:
        return len(self.items)


class SearchEngine:
    """Executes keyword queries against the published index."""

    def __init__(
        self,
        network: DhtNetwork,
        catalog: Catalog,
        inverted_cache: bool = False,
        mode: str = "atomic",
        optimizer: CostBasedOptimizer | bool | None = None,
        memory_budget: int | None = None,
        tracer=None,
        metrics=None,
    ):
        self.network = network
        self.catalog = catalog
        self.inverted_cache = inverted_cache
        self.mode = mode
        self.tracer = tracer
        self.metrics = metrics
        #: ``True`` builds a default cost-based optimizer; with one
        #: attached, ``strategy=None`` queries price all four join
        #: strategies and execute the cheapest. The optimizer targets
        #: Inverted-index deployments — an InvertedCache deployment has
        #: already made its strategy choice, so it is ignored there.
        #: ``memory_budget`` (join rows per site, not bytes) makes the
        #: default optimizer price expected spill + re-read bytes too.
        if optimizer is True:
            optimizer = CostBasedOptimizer(
                catalog,
                config=OptimizerConfig(memory_budget=memory_budget),
                metrics=metrics,
            )
        self.optimizer = optimizer or None
        self.planner = KeywordPlanner(catalog, optimizer=self.optimizer)
        self.executor = DistributedExecutor(
            network, catalog, mode=mode, tracer=tracer, metrics=metrics
        )

    def prepare(
        self,
        terms: list[str],
        query_node: int | None = None,
        strategy: JoinStrategy | None = None,
    ) -> DistributedPlan:
        """Normalise ``terms`` and build the plan without executing it.

        ``terms`` are normalised with the same tokenizer used at publish
        time, so stop words in the query are ignored (a query that is all
        stop words raises :class:`~repro.common.errors.PlanError`). The
        event-driven query engine uses this to learn the keyword-site
        chain it must route hop by hop before executing.
        """
        normalised: list[str] = []
        for term in terms:
            normalised.extend(extract_keywords(term))
        if not normalised:
            raise PlanError(f"query {terms!r} contains no indexable keyword")
        if query_node is None:
            query_node = self.network.random_node_id()
        if strategy is None:
            if self.optimizer is not None and not self.inverted_cache:
                # Cost-based choice: the planner prices all four
                # strategies from its posting statistics.
                return self.planner.plan(normalised, query_node, strategy=None)
            strategy = (
                JoinStrategy.INVERTED_CACHE
                if self.inverted_cache
                else JoinStrategy.DISTRIBUTED_JOIN
            )
        if strategy is JoinStrategy.INVERTED_CACHE:
            planner = KeywordPlanner(self.catalog, posting_table="InvertedCache")
        else:
            planner = self.planner
        return planner.plan(normalised, query_node, strategy=strategy)

    def execute_plan(self, plan: DistributedPlan, trace_parent=None) -> SearchResult:
        """Execute an already-prepared plan. See :meth:`search`."""
        items, stats = self.executor.execute(plan, trace_parent=trace_parent)
        self.observe_execution(plan, stats)
        return self.finalize(plan, items, stats)

    def observe_execution(self, plan: DistributedPlan, stats: QueryStats) -> None:
        """Feed an executed plan's metered bytes back to the optimizer.

        No-op unless a cost-based optimizer priced the plan — the hook
        behind the predicted-vs-actual bytes error metric. Called by the
        synchronous path above and by the event-driven hybrid engine when
        its pipelined execution completes.
        """
        if self.optimizer is not None and plan.predicted_bytes is not None:
            self.optimizer.observe_actual(
                plan.strategy, plan.predicted_bytes, stats.bytes
            )

    @staticmethod
    def finalize(plan: DistributedPlan, items: list[Row], stats: QueryStats) -> SearchResult:
        """Post-filter executed Item rows into a :class:`SearchResult`.

        DHT keyword match is exact-token; this re-checks conjunctive
        semantics on the returned filenames (mirrors client behavior).
        Shared by the synchronous path and the event-driven dataflow,
        which receives its Item rows from answer batches instead of a
        blocking execute call.
        """
        keywords = list(plan.keywords)
        matching = [item for item in items if _matches_all(item["filename"], keywords)]
        stats.results = len(matching)
        return SearchResult(terms=plan.keywords, items=matching, stats=stats)

    def search(
        self,
        terms: list[str],
        query_node: int | None = None,
        strategy: JoinStrategy | None = None,
    ) -> SearchResult:
        """Run a conjunctive keyword query (:meth:`prepare` + :meth:`execute_plan`)."""
        return self.execute_plan(self.prepare(terms, query_node, strategy))


def _matches_all(filename: str, terms: list[str]) -> bool:
    keywords = set(extract_keywords(filename))
    return all(term in keywords for term in terms)
