"""Query-result caching and adaptive replication (extension subsystem).

The paper's hybrid design wins because popular queries are absorbed
cheaply by flooding while rare ones go to the DHT. This package grows the
machinery that makes the popular mass get *cheaper with load*:

* :mod:`repro.cache.results` — a byte-budgeted ultrapeer-side query-result
  cache with pluggable eviction (LRU, LFU, TTL) and hit/miss/byte
  accounting against the shared :class:`~repro.common.units.CostModel`.
* :mod:`repro.cache.popularity` — a streaming query-popularity estimator
  (space-saving top-k plus a sliding window) feeding cache admission and
  the partial-flooding TTL in :mod:`repro.gnutella.flooding`.
* :mod:`repro.cache.replication` — an adaptive replication controller that
  detects hot posting-list keys in the DHT and replicates them across
  successor nodes to spread read load, with TTL/churn-aware invalidation.
"""

from repro.cache.popularity import (
    PopularityEstimator,
    SlidingWindowCounter,
    SpaceSavingCounter,
    query_key,
)
from repro.cache.replication import (
    AdaptiveReplicationController,
    ReplicationConfig,
    ReplicationStats,
)
from repro.cache.results import CachedResult, CacheStats, QueryResultCache

__all__ = [
    "AdaptiveReplicationController",
    "CachedResult",
    "CacheStats",
    "PopularityEstimator",
    "QueryResultCache",
    "ReplicationConfig",
    "ReplicationStats",
    "SlidingWindowCounter",
    "SpaceSavingCounter",
    "query_key",
]
