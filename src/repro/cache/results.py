"""Byte-budgeted query-result cache for hybrid ultrapeers.

A hybrid ultrapeer that re-issues timed-out leaf queries through
PIERSearch pays ~20 KB per distributed-join query (Section 7). Popular
queries repeat, and their answers are stable between publish rounds — so
an ultrapeer-side result cache converts the popular mass of the workload
into local hits, exactly the "popular queries get cheaper with load"
behaviour the hybrid design is built around.

The cache is budgeted in *bytes*, not entries: entry footprints are
estimated with the same :class:`~repro.common.units.CostModel` the rest of
the system charges wire costs with, so the budget is commensurable with
the bandwidth numbers experiments report. Eviction is pluggable (LRU,
LFU, or TTL/oldest-first), expiry is wall-clock (virtual time via an
injected ``clock``), and admission can be gated on a popularity predicate
so one-off tail queries do not wash the budget out.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.cache.popularity import query_key
from repro.common.units import CostModel, DEFAULT_COST_MODEL

EVICTION_POLICIES = ("lru", "lfu", "ttl")

#: bookkeeping bytes per cache entry (key, counters, timestamps)
ENTRY_OVERHEAD_BYTES = 96


@dataclass
class CachedResult:
    """One cached query answer plus its accounting metadata."""

    key: tuple[str, ...]
    filenames: tuple[str, ...]
    result_count: int
    #: wire bytes the original execution cost — what every hit saves
    cost_bytes: int
    #: storage footprint charged against the cache budget
    entry_bytes: int
    created_at: float
    last_access: float
    hits: int = 0


@dataclass
class CacheStats:
    """Hit/miss/byte accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    rejections: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    #: wire bytes that hits avoided re-spending
    bytes_saved: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class QueryResultCache:
    """Byte-budgeted result cache with pluggable eviction.

    ``policy`` selects the eviction victim when the budget overflows:

    * ``"lru"`` — least recently used entry.
    * ``"lfu"`` — fewest hits (ties broken by least recent use).
    * ``"ttl"`` — oldest entry (FIFO by creation time).

    Independent of the policy, a ``ttl`` makes entries expire ``ttl`` time
    units after creation. Time comes from ``clock`` (e.g. a simulator's
    virtual clock); without one, a logical clock ticks once per operation
    so TTLs are expressed in cache operations.

    ``admission`` (if given) is consulted before caching a new answer:
    return False to reject — the hook where a popularity estimator keeps
    one-off tail queries from evicting proven-popular entries.
    """

    def __init__(
        self,
        budget_bytes: int,
        policy: str = "lru",
        ttl: float | None = None,
        clock: Callable[[], float] | None = None,
        cost_model: CostModel | None = None,
        admission: Callable[[tuple[str, ...]], bool] | None = None,
    ):
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick one of {EVICTION_POLICIES}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.budget_bytes = budget_bytes
        self.policy = policy
        self.ttl = ttl
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.admission = admission
        self._clock = clock
        self._ticks = 0.0
        #: insertion/recency-ordered entries (most recently used last)
        self._entries: OrderedDict[tuple[str, ...], CachedResult] = OrderedDict()
        self.used_bytes = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return self._ticks

    def _tick(self) -> float:
        if self._clock is None:
            self._ticks += 1.0
        return self.now()

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, terms: Sequence[str]) -> CachedResult | None:
        """Cached answer for ``terms``, or None. Counts a hit or a miss."""
        now = self._tick()
        key = query_key(terms)
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry, now):
            self._drop(key)
            self.stats.expirations += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        entry.hits += 1
        entry.last_access = now
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.bytes_saved += entry.cost_bytes
        return entry

    def put(
        self,
        terms: Sequence[str],
        filenames: Sequence[str],
        cost_bytes: int,
        result_count: int | None = None,
    ) -> bool:
        """Cache the answer to ``terms``; returns True if it was stored.

        ``cost_bytes`` is what executing the query cost on the wire (the
        savings a future hit realises); ``filenames`` is the answer
        payload whose size is charged against the budget.
        """
        now = self._tick()
        key = query_key(terms)
        if not key:
            return False  # nothing indexable to key on
        if self.admission is not None and not self.admission(key):
            self.stats.rejections += 1
            return False
        footprint = self.entry_footprint(filenames)
        if footprint > self.budget_bytes:
            self.stats.rejections += 1
            return False
        if key in self._entries:
            self._drop(key)  # refresh: replace the stale entry
        while self.used_bytes + footprint > self.budget_bytes and self._entries:
            self._evict(now)
        entry = CachedResult(
            key=key,
            filenames=tuple(filenames),
            result_count=len(filenames) if result_count is None else result_count,
            cost_bytes=cost_bytes,
            entry_bytes=footprint,
            created_at=now,
            last_access=now,
        )
        self._entries[key] = entry
        self.used_bytes += footprint
        self.stats.insertions += 1
        return True

    def peek(self, terms: Sequence[str]) -> CachedResult | None:
        """Read an entry without touching stats, recency, or expiry."""
        return self._entries.get(query_key(terms))

    def entries(self) -> Iterator[CachedResult]:
        """Iterate live entries (no side effects)."""
        return iter(self._entries.values())

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, terms: Sequence[str]) -> bool:
        """Drop one entry (e.g. after a publish changes its answer)."""
        key = query_key(terms)
        if key not in self._entries:
            return False
        self._drop(key)
        self.stats.invalidations += 1
        return True

    def purge_expired(self) -> int:
        """Drop every entry past its TTL; returns how many were dropped."""
        if self.ttl is None:
            return 0
        now = self.now()
        expired = [key for key, entry in self._entries.items() if self._expired(entry, now)]
        for key in expired:
            self._drop(key)
        self.stats.expirations += len(expired)
        return len(expired)

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def entry_footprint(self, filenames: Sequence[str]) -> int:
        """Budget bytes one answer occupies: its Item tuples + overhead."""
        payload = sum(self.cost_model.item_tuple_bytes(name) for name in filenames)
        return ENTRY_OVERHEAD_BYTES + payload

    def _expired(self, entry: CachedResult, now: float) -> bool:
        return self.ttl is not None and now - entry.created_at >= self.ttl

    def _drop(self, key: tuple[str, ...]) -> None:
        entry = self._entries.pop(key)
        self.used_bytes -= entry.entry_bytes

    def _evict(self, now: float) -> None:
        if self.policy == "lru":
            victim = next(iter(self._entries))
        elif self.policy == "lfu":
            victim = min(
                self._entries,
                key=lambda k: (self._entries[k].hits, self._entries[k].last_access),
            )
        else:  # ttl: oldest first
            victim = min(self._entries, key=lambda k: self._entries[k].created_at)
        self._drop(victim)
        self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, terms: object) -> bool:
        if not isinstance(terms, (list, tuple)):
            return False
        return query_key(terms) in self._entries
