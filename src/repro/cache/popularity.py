"""Streaming query-popularity estimation.

Two complementary sketches feed the caching subsystem:

* :class:`SpaceSavingCounter` — the space-saving top-k algorithm
  [Metwally et al., ICDT 2005]: bounded memory, never undercounts by more
  than the smallest tracked count, exact for items that dominate the
  stream. This is the long-run view ("what has been popular overall").
* :class:`SlidingWindowCounter` — bucketed counts over the most recent
  ``window`` observations. This is the recency view ("what is popular
  right now"), which is what admission control and the partial-flooding
  threshold should react to: filesharing popularity is bursty and old
  hits should stop influencing decisions.

:class:`PopularityEstimator` combines both behind one ``observe`` call and
is shared by the result cache (admission), the hybrid ultrapeer (query
snooping) and the adaptive replication controller (hot-key detection).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.piersearch.tokenizer import extract_keywords


def query_key(terms: Iterable[str]) -> tuple[str, ...]:
    """Canonical cache/popularity key for a conjunctive keyword query.

    Terms are tokenized exactly as the publisher and search engine do, then
    deduplicated and sorted — conjunctive semantics make term order
    irrelevant, so "foo bar" and "bar foo" share one cache entry. Queries
    with no indexable keyword map to the empty tuple (never cached).
    """
    keywords: set[str] = set()
    for term in terms:
        keywords.update(extract_keywords(term))
    return tuple(sorted(keywords))


class SpaceSavingCounter:
    """Bounded-memory top-k frequency counting (space-saving algorithm).

    Tracks at most ``capacity`` distinct keys. When a new key arrives at a
    full table, the minimum-count entry is evicted and the newcomer
    inherits its count (recorded as that key's maximum overestimation
    error). ``estimate`` therefore never undercounts a tracked key's true
    frequency, and ``guaranteed`` never overcounts it.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}

    def observe(self, key: Hashable, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        victim = min(self._counts, key=lambda k: self._counts[k])
        inherited = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = inherited + count
        self._errors[key] = inherited

    def estimate(self, key: Hashable) -> int:
        """Upper-bound estimate of ``key``'s stream count (0 if untracked)."""
        return self._counts.get(key, 0)

    def guaranteed(self, key: Hashable) -> int:
        """Lower-bound count: estimate minus the inherited error."""
        return self._counts.get(key, 0) - self._errors.get(key, 0)

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        """The ``n`` highest-estimate keys, most popular first."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:n]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


class SlidingWindowCounter:
    """Per-key counts over the last ``window`` observations.

    The window is approximated with ``buckets`` sub-counters rotated every
    ``window // buckets`` observations, so memory and rotation cost stay
    bounded while old observations age out in at most one bucket-width.
    """

    def __init__(self, window: int = 512, buckets: int = 8):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        buckets = max(1, min(buckets, window))
        self.window = window
        self.bucket_width = max(1, window // buckets)
        self._buckets: deque[dict[Hashable, int]] = deque([{}])
        self._num_buckets = buckets
        self._in_current = 0
        self.observed = 0  # lifetime observations

    def observe(self, key: Hashable, count: int = 1) -> None:
        if self._in_current >= self.bucket_width:
            self._buckets.append({})
            if len(self._buckets) > self._num_buckets:
                self._buckets.popleft()
            self._in_current = 0
        current = self._buckets[-1]
        current[key] = current.get(key, 0) + count
        self._in_current += count
        self.observed += count

    def estimate(self, key: Hashable) -> int:
        """Observations of ``key`` within (approximately) the window."""
        return sum(bucket.get(key, 0) for bucket in self._buckets)

    @property
    def total(self) -> int:
        """Total observations currently inside the window."""
        return sum(sum(bucket.values()) for bucket in self._buckets)


@dataclass
class PopularityEstimator:
    """Combined long-run + recent popularity view over one key stream.

    ``capacity`` bounds the space-saving table; ``window`` sets how many
    recent observations the recency view covers. Both views see every
    ``observe`` call, so one estimator can simultaneously drive cache
    admission (recent counts), partial-flooding TTLs (recent frequency)
    and hot-key replication (sustained read rates).
    """

    capacity: int = 64
    window: int = 512
    buckets: int = 8
    topk: SpaceSavingCounter = field(init=False)
    recent: SlidingWindowCounter = field(init=False)

    def __post_init__(self) -> None:
        self.topk = SpaceSavingCounter(self.capacity)
        self.recent = SlidingWindowCounter(self.window, self.buckets)

    def observe(self, key: Hashable, count: int = 1) -> None:
        self.topk.observe(key, count)
        self.recent.observe(key, count)

    def count(self, key: Hashable) -> int:
        """Long-run (space-saving) count estimate."""
        return self.topk.estimate(key)

    def recent_count(self, key: Hashable) -> int:
        """Observations of ``key`` within the sliding window."""
        return self.recent.estimate(key)

    def frequency(self, key: Hashable) -> float:
        """Fraction of recent observations that were ``key`` (in [0, 1])."""
        total = self.recent.total
        if total == 0:
            return 0.0
        return self.recent.estimate(key) / total

    def is_popular(self, key: Hashable, min_recent: int = 2) -> bool:
        """Whether ``key`` recurred recently (admission-style predicate)."""
        return self.recent.estimate(key) >= min_recent

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        return self.topk.top(n)

    @property
    def observed(self) -> int:
        """Lifetime observation count."""
        return self.recent.observed
