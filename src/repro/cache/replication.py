"""Adaptive replication of hot DHT keys.

PIERSearch hashes each keyword's posting list to one DHT node, so a
popular keyword concentrates every query touching it on a single host —
the classic hot-spot problem of DHT-based search. The standard remedy
(CFS/Chord style) is to replicate a hot key across its owner's successor
nodes and spread reads over the replica set.

:class:`AdaptiveReplicationController` does this adaptively: it watches
the read stream the :class:`~repro.dht.network.DhtNetwork` reports, keeps
a sliding-window popularity estimate per key, and when a key's recent
read count crosses ``hot_read_threshold`` it copies the key's values to
``extra_replicas`` successors and registers the replica set with the
network, whose replica-aware reads then rotate over owner + replicas.

Invalidation is TTL- and churn-aware: replicas expire ``replica_ttl``
after placement (hot sets drift; posting lists change as publishers come
and go), and a replica or owner leaving the network prunes the affected
sets immediately. Expired placements of still-hot keys are simply
re-placed on the next read.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.cache.popularity import PopularityEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dht doesn't import us)
    from repro.dht.network import DhtNetwork

#: how many reads between TTL sweeps
EXPIRY_SWEEP_INTERVAL = 32


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs for the adaptive replication controller."""

    #: recent reads (within ``window``) that make a key hot
    hot_read_threshold: int = 16
    #: replicas placed per hot key (beyond the natural owner)
    extra_replicas: int = 2
    #: time units a placement stays valid; None = until churn removes it
    replica_ttl: float | None = None
    #: sliding-window size (in reads) for the hotness estimate
    window: int = 512
    #: distinct keys tracked by the popularity sketch
    capacity: int = 128

    def __post_init__(self) -> None:
        if self.hot_read_threshold < 1:
            raise ValueError(f"hot_read_threshold must be >= 1, got {self.hot_read_threshold}")
        if self.extra_replicas < 1:
            raise ValueError(f"extra_replicas must be >= 1, got {self.extra_replicas}")
        if self.replica_ttl is not None and self.replica_ttl <= 0:
            raise ValueError(f"replica_ttl must be positive, got {self.replica_ttl}")


@dataclass
class ReplicationStats:
    """What the controller did over its lifetime."""

    reads: int = 0
    replicated_keys: int = 0
    replicas_placed: int = 0
    expired: int = 0
    churn_drops: int = 0

    @property
    def active_placements(self) -> int:
        return self.replicated_keys - self.expired


class AdaptiveReplicationController:
    """Watches DHT reads and replicates hot keys to successor nodes.

    Attaching the controller installs it as the network's read and
    removal listener; the network's replica-aware data path does the rest
    (rotating reads over registered replica sets). Detach with
    :meth:`detach` to stop observing.
    """

    def __init__(
        self,
        network: "DhtNetwork",
        config: ReplicationConfig | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.network = network
        self.config = config or ReplicationConfig()
        self._clock = clock
        self._ticks = 0.0
        self.reads = PopularityEstimator(
            capacity=self.config.capacity, window=self.config.window
        )
        #: per-node count of reads each node actually served
        self.serve_counts: dict[int, int] = {}
        #: key -> placement time
        self._placed_at: dict[int, float] = {}
        #: key -> nodes that did NOT hold the key before we copied it there
        self._fresh_holders: dict[int, list[int]] = {}
        self.stats = ReplicationStats()
        network.read_listener = self.record_read
        network.removal_listener = self.on_node_removed

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return self._ticks

    # ------------------------------------------------------------------
    # Read stream
    # ------------------------------------------------------------------

    def record_read(self, key: int, served_by: int) -> None:
        """One DHT read of ``key``, answered by node ``served_by``."""
        if self._clock is None:
            self._ticks += 1.0
        self.stats.reads += 1
        self.reads.observe(key)
        self.serve_counts[served_by] = self.serve_counts.get(served_by, 0) + 1
        if self.config.replica_ttl is not None and self.stats.reads % EXPIRY_SWEEP_INTERVAL == 0:
            self.expire()
        if (
            key not in self._placed_at
            and self.reads.recent_count(key) >= self.config.hot_read_threshold
        ):
            self.replicate(key)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replicate(self, key: int) -> list[int]:
        """Copy ``key``'s values to the owner's successors; returns them."""
        network = self.network
        owner_id = network.owner_of(key)
        values = network.get_local(owner_id, key)
        if not values:
            return []
        now = self.now()
        expires_at = None if self.config.replica_ttl is None else now + self.config.replica_ttl
        placed: list[int] = []
        fresh: list[int] = []
        payload = 0
        for successor_id in network.successors_of(owner_id):
            if len(placed) >= self.config.extra_replicas:
                break
            if successor_id not in network.nodes:
                continue
            held_before = network.local_contains(successor_id, key)
            for value in values:
                network.put_local(successor_id, key, value, identity=_identity(value))
            if not held_before:
                # Only copies we created carry an expiry stamp; a node
                # that already held the key (e.g. a natural put replica)
                # owns its copy and must never lose it to our TTL.
                if expires_at is not None:
                    network.set_local_expiry(successor_id, key, expires_at)
                fresh.append(successor_id)
            placed.append(successor_id)
            payload += network.cost_model.message_bytes(
                len(values) * network.cost_model.tuple_bytes(network.cost_model.fileid_bytes)
            )
        if not placed:
            return []
        # One direct transfer per replica, charged like put_raw's replication.
        network.transport.charge("cache.replicate", len(placed), payload)
        network.register_replicas(key, placed)
        self._placed_at[key] = now
        self._fresh_holders[key] = fresh
        self.stats.replicated_keys += 1
        self.stats.replicas_placed += len(placed)
        return placed

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, key: int) -> None:
        """Tear down ``key``'s placement and drop copies we created."""
        self.network.unregister_replicas(key)
        for node_id in self._fresh_holders.pop(key, []):
            self.network.remove_local(node_id, key)
        self._placed_at.pop(key, None)

    def expire(self, now: float | None = None) -> int:
        """Invalidate placements older than ``replica_ttl``; returns count.

        The replica holders drop their stamped copies through the store's
        own expiry machinery (:meth:`~repro.dht.storage.LocalStore.purge_expired`),
        mirroring how a real holder would age data out locally.
        """
        if self.config.replica_ttl is None:
            return 0
        now = self.now() if now is None else now
        stale = [
            key
            for key, placed_at in self._placed_at.items()
            if now - placed_at >= self.config.replica_ttl
        ]
        for key in stale:
            self.network.unregister_replicas(key)
            for node_id in self._fresh_holders.pop(key, []):
                self.network.purge_expired_local(node_id, now)
            self._placed_at.pop(key, None)
        self.stats.expired += len(stale)
        return len(stale)

    def on_node_removed(self, node_id: int) -> None:
        """Churn: forget copies that lived on the departed node.

        The network has already pruned ``node_id`` from its replica sets;
        here we fix up our own bookkeeping so a later ``invalidate`` does
        not touch a node that no longer exists, and drop placements that
        lost every fresh copy.
        """
        for key in list(self._fresh_holders):
            holders = self._fresh_holders[key]
            if node_id in holders:
                holders.remove(node_id)
                self.stats.churn_drops += 1
            if not self.network.replica_nodes(key):
                self.invalidate(key)
        self.serve_counts.pop(node_id, None)

    def detach(self) -> None:
        """Stop observing the network (placements stay until invalidated)."""
        if self.network.read_listener == self.record_read:
            self.network.read_listener = None
        if self.network.removal_listener == self.on_node_removed:
            self.network.removal_listener = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def replicated(self) -> list[int]:
        """Keys with a currently active placement."""
        return list(self._placed_at)

    def serve_skew(self) -> float:
        """Max/mean ratio of per-node served reads (1.0 = perfectly even)."""
        counts = [count for count in self.serve_counts.values() if count > 0]
        if not counts:
            return 0.0
        return max(counts) / (sum(counts) / len(counts))


def _identity(value: Any) -> Hashable:
    """Dedup handle matching the network's replica handoff semantics."""
    try:
        hash(value)
        return value
    except TypeError:
        return id(value)
