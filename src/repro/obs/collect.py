"""Pull-based collectors: snapshot subsystem stats into a registry.

The DHT bandwidth meter, route cache, result cache, and simulator
already keep exact counts on their own hot paths; re-counting them
per-message in the metrics layer would double the bookkeeping for
nothing. Instead — Prometheus-style — these collectors are called at
scrape time and copy the current totals into gauges (and the meter's
per-category traffic into labelled gauges), so a scrape costs O(series)
and the hot paths cost nothing extra.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry


def _shard_now(shard: Any) -> float:
    """Clock of one shard: a live Simulator's ``now`` or a report's
    ``final_time`` (ShardReport rows from a finished run)."""
    now = getattr(shard, "now", None)
    return now if now is not None else getattr(shard, "final_time", 0.0)


def collect_network(registry: MetricsRegistry, network: Any, prefix: str = "dht") -> None:
    """DHT-wide gauges: per-message-type bandwidth, route cache, churn."""
    registry.gauge(f"{prefix}.nodes").set(len(network.nodes))
    registry.gauge(f"{prefix}.membership_version").set(network.membership_version)
    meter = network.meter
    registry.gauge(f"{prefix}.messages").set(meter.messages)
    registry.gauge(f"{prefix}.bytes").set(meter.bytes)
    for category, cost in meter.by_category.items():
        labels = {"category": category}
        registry.gauge(f"{prefix}.traffic.messages", labels=labels).set(cost.messages)
        registry.gauge(f"{prefix}.traffic.bytes", labels=labels).set(cost.bytes)
    hits = network.route_cache_hits
    misses = network.route_cache_misses
    registry.gauge(f"{prefix}.route_cache.hits").set(hits)
    registry.gauge(f"{prefix}.route_cache.misses").set(misses)
    total = hits + misses
    registry.gauge(f"{prefix}.route_cache.hit_ratio").set(hits / total if total else 0.0)
    registry.gauge(f"{prefix}.route_repairs").set(getattr(network, "route_repairs", 0))
    handoff = meter.by_category.get("dht.handoff")
    registry.gauge(f"{prefix}.handoff.bytes").set(handoff.bytes if handoff else 0)


def collect_cache(registry: MetricsRegistry, cache: Any, prefix: str = "cache") -> None:
    """Result-cache gauges: hit/miss/eviction accounting plus occupancy."""
    stats = cache.stats
    for name in (
        "hits",
        "misses",
        "insertions",
        "rejections",
        "evictions",
        "expirations",
        "invalidations",
        "bytes_saved",
    ):
        registry.gauge(f"{prefix}.{name}").set(getattr(stats, name))
    registry.gauge(f"{prefix}.hit_ratio").set(stats.hit_rate)
    registry.gauge(f"{prefix}.entries").set(len(cache))
    registry.gauge(f"{prefix}.used_bytes").set(cache.used_bytes)
    registry.gauge(f"{prefix}.budget_bytes").set(cache.budget_bytes)


def collect_simulator(registry: MetricsRegistry, sim: Any, prefix: str = "sim") -> None:
    """Engine gauges: virtual clock, lifetime events, queue depth.

    Accepts a plain :class:`~repro.sim.engine.Simulator`, a
    :class:`~repro.sim.shard.ShardedSimulator`, a finished
    :class:`~repro.sim.shard.ShardRunReport`, or any iterable of
    simulators (e.g. one per shard). The aggregate gauges are always
    emitted under ``prefix``; sharded inputs additionally get one
    labelled series per shard — clock, queue depth, busy seconds, and
    (process backend) IPC serialize/deserialize time — so dashboards see
    both the whole kernel and where each region's wall time went.
    """
    shards = getattr(sim, "shards", None)
    if shards is None and not hasattr(sim, "now"):
        shards = list(sim)  # bare iterable of simulators
    if shards is not None:
        registry.gauge(f"{prefix}.virtual_now").set(
            max((_shard_now(s) for s in shards), default=0.0)
        )
        registry.gauge(f"{prefix}.events_processed").set(sum(s.processed for s in shards))
        pending = getattr(sim, "pending", None)
        if pending is None:
            pending = sum(getattr(s, "pending", 0) for s in shards)
        registry.gauge(f"{prefix}.events_pending").set(pending)
        registry.gauge(f"{prefix}.shards").set(len(shards))
        windows = getattr(sim, "windows", None)
        if windows is not None:
            registry.gauge(f"{prefix}.windows").set(windows)
        wall = getattr(sim, "wall_seconds", None)
        if wall is not None:
            registry.gauge(f"{prefix}.wall_seconds").set(wall)
            registry.gauge(f"{prefix}.cross_messages").set(
                getattr(sim, "cross_messages", 0)
            )
        busy_by_shard = getattr(sim, "busy_seconds", None)
        for shard_id, shard in enumerate(shards):
            labels = {"shard": str(shard_id)}
            registry.gauge(f"{prefix}.shard.virtual_now", labels=labels).set(
                _shard_now(shard)
            )
            registry.gauge(f"{prefix}.shard.events_processed", labels=labels).set(
                shard.processed
            )
            registry.gauge(f"{prefix}.shard.events_pending", labels=labels).set(
                getattr(shard, "pending", 0)
            )
            busy = getattr(shard, "busy_seconds", None)
            if busy is None and busy_by_shard is not None:
                busy = busy_by_shard[shard_id]
            if busy is not None:
                registry.gauge(f"{prefix}.shard.busy_seconds", labels=labels).set(busy)
            for phase in ("serialize", "deserialize"):
                seconds = getattr(shard, f"ipc_{phase}_seconds", None)
                if seconds is not None:
                    registry.gauge(
                        f"{prefix}.shard.ipc_seconds",
                        labels={"shard": str(shard_id), "phase": phase},
                    ).set(seconds)
        return
    registry.gauge(f"{prefix}.virtual_now").set(sim.now)
    registry.gauge(f"{prefix}.events_processed").set(sim.processed)
    registry.gauge(f"{prefix}.events_pending").set(sim.pending)


def collect_all(
    registry: MetricsRegistry,
    network: Any = None,
    sim: Any = None,
    caches: dict[str, Any] | None = None,
) -> MetricsRegistry:
    """One-call scrape of every standard subsystem; returns the registry.

    ``sim`` may be a single simulator, a sharded simulator, or an
    iterable of per-shard simulators — :func:`collect_simulator` merges
    multi-shard inputs into aggregate plus per-shard labelled gauges.
    """
    if network is not None:
        collect_network(registry, network)
    if sim is not None:
        collect_simulator(registry, sim)
    for name, cache in (caches or {}).items():
        collect_cache(registry, cache, prefix=f"cache.{name}")
    return registry
