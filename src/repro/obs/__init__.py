"""Observability layer: virtual-time tracing, metrics, and profiling.

Three cooperating pieces, all strictly opt-in so the hot paths stay
no-op cheap when observability is off:

* :mod:`repro.obs.trace` — a virtual-time tracer recording a span tree
  per query (race -> flood rounds / DHT hop chains / dataflow stages ->
  exchange batches / join spills), exportable as Chrome ``trace_event``
  JSON and flat JSONL.
* :mod:`repro.obs.metrics` — a labelled :class:`MetricsRegistry`
  extending :class:`repro.sim.stats.StatsRegistry` with Prometheus
  text-format and JSON snapshot exporters.
* :mod:`repro.obs.profile` — 1-in-N sampled wall-clock profiling of
  event-loop callbacks, with a top-K hot-span report.

:mod:`repro.obs.collect` holds the pull-based collectors that snapshot
existing subsystem stats (DHT bandwidth meter, route cache, result
cache) into a registry at scrape time, Prometheus-style, instead of
adding per-message bookkeeping to the hot paths.
"""

from repro.obs.collect import (
    collect_all,
    collect_cache,
    collect_network,
    collect_simulator,
)
from repro.obs.metrics import MetricsRegistry, validate_prometheus
from repro.obs.profile import Profiler, profiled
from repro.obs.trace import Span, Tracer, validate_chrome_trace

__all__ = [
    "MetricsRegistry",
    "Profiler",
    "Span",
    "Tracer",
    "collect_all",
    "collect_cache",
    "collect_network",
    "collect_simulator",
    "profiled",
    "validate_chrome_trace",
    "validate_prometheus",
]
