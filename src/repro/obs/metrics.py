"""Labelled metrics registry with Prometheus and JSON exporters.

:class:`MetricsRegistry` extends :class:`repro.sim.stats.StatsRegistry`
(so every existing counter/histogram call keeps working) with:

* optional ``labels={...}`` on all three metric kinds — the labelled
  series is stored under a canonical ``name{k="v",...}`` key in the same
  dicts, so ``summary()`` and ad-hoc inspection see it too;
* :meth:`to_prometheus` — the text exposition format (``# TYPE`` lines,
  sanitised names, counters as ``_total``, histograms as summaries with
  ``quantile`` labels plus ``_sum``/``_count``);
* :meth:`to_json` — a structured snapshot for dashboards and tests.

:func:`validate_prometheus` is the grammar check the CI step runs over
exporter output.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.sim.stats import Counter, Gauge, Histogram, StatsRegistry

#: quantiles exported for every histogram, summary-style
_QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\"\\n])*\""  # first label
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\"\\n])*\")*,?\})?"  # rest
    r" (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)"  # value
    r"( -?[0-9]+)?$"  # optional timestamp
)
_COMMENT_LINE = re.compile(
    r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped))$"
)


def _series_key(name: str, labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return name
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{body}}}"


def split_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of the canonical key encoding: ``name{a="b"}`` -> parts."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value.strip('"')
    return name, labels


def sanitize_name(name: str) -> str:
    """A metric name the Prometheus grammar accepts (dots become underscores)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry(StatsRegistry):
    """The unified registry the observability layer wires everywhere."""

    def counter(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> Counter:
        return super().counter(_series_key(name, labels))

    def gauge(self, name: str, labels: Mapping[str, Any] | None = None) -> Gauge:
        return super().gauge(_series_key(name, labels))

    def histogram(
        self,
        name: str,
        labels: Mapping[str, Any] | None = None,
        reservoir_size: int | None = None,
        seed: int = 0,
    ) -> Histogram:
        return super().histogram(
            _series_key(name, labels), reservoir_size=reservoir_size, seed=seed
        )

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render every series in the Prometheus text exposition format."""
        lines: list[str] = []
        typed: set[str] = set()

        def emit_type(base: str, kind: str) -> None:
            if base not in typed:
                typed.add(base)
                lines.append(f"# TYPE {base} {kind}")

        def full_name(key: str, suffix: str = "") -> tuple[str, str]:
            name, labels = split_series_key(key)
            base = sanitize_name(f"{prefix}_{name}" if prefix else name) + suffix
            body = ",".join(
                f'{sanitize_name(k)}="{_escape(v)}"' for k, v in labels.items()
            )
            return base, body

        for key in sorted(self.counters):
            base, body = full_name(key, suffix="_total")
            emit_type(base, "counter")
            label_part = f"{{{body}}}" if body else ""
            lines.append(f"{base}{label_part} {_format_value(self.counters[key].value)}")

        for key in sorted(self.gauges):
            base, body = full_name(key)
            emit_type(base, "gauge")
            label_part = f"{{{body}}}" if body else ""
            lines.append(f"{base}{label_part} {_format_value(self.gauges[key].value)}")

        for key in sorted(self.histograms):
            histogram = self.histograms[key]
            base, body = full_name(key)
            emit_type(base, "summary")
            if histogram.count:
                for q in _QUANTILES:
                    quantile_body = (body + "," if body else "") + f'quantile="{q}"'
                    lines.append(
                        f"{base}{{{quantile_body}}} "
                        f"{_format_value(histogram.quantile(q))}"
                    )
            label_part = f"{{{body}}}" if body else ""
            lines.append(f"{base}_sum{label_part} {_format_value(histogram.total)}")
            lines.append(f"{base}_count{label_part} {histogram.count}")

        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        """Structured snapshot of every series (exact stats, key quantiles)."""
        histograms: dict[str, Any] = {}
        for key, histogram in self.histograms.items():
            entry: dict[str, Any] = {
                "count": histogram.count,
                "sum": histogram.total,
                "mean": None if not histogram.count else histogram.mean,
                "min": None if not histogram.count else histogram.minimum,
                "max": None if not histogram.count else histogram.maximum,
            }
            if histogram.count:
                entry["quantiles"] = {
                    str(q): histogram.quantile(q) for q in _QUANTILES
                }
            histograms[key] = entry
        return {
            "counters": {key: c.value for key, c in sorted(self.counters.items())},
            "gauges": {key: g.value for key, g in sorted(self.gauges.items())},
            "histograms": dict(sorted(histograms.items())),
        }


def _escape(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def validate_prometheus(text: str) -> None:
    """Raise ``ValueError`` unless ``text`` parses as the exposition format.

    Line-by-line check against the text-format grammar: comment lines
    must be well-formed ``# HELP``/``# TYPE``, sample lines must be
    ``name[{labels}] value [timestamp]`` with legal metric/label names
    and a parseable value.
    """
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                raise ValueError(f"line {number}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        if not _NAME_OK.match(match.group(1)):  # pragma: no cover - regex overlap
            raise ValueError(f"line {number}: bad metric name: {match.group(1)!r}")
