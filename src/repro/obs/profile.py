"""Sampled wall-clock profiling of event-loop and operator callbacks.

The simulator runs millions of virtual events per wall second, so timing
every callback would be the observer effect incarnate. Instead the
profiler times **one in N** calls with ``time.perf_counter`` and scales
up by the sampling factor — the standard sampling estimator, accurate
for the hot callbacks that dominate a run (they collect thousands of
samples) and nearly free for the rest: the unsampled path is one
counter increment and one modulo.

Hook-up is deliberately loose: :func:`install` registers the profiler
with :mod:`repro.sim.engine`, and every ``Simulator`` constructed while
it is installed routes callbacks through :meth:`Profiler.run_sampled` —
that is how ``experiments/runner.py --profile`` reaches the simulators
experiments build internally. When nothing is installed the engine's
hot loop pays exactly one ``is None`` check per event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


def callback_key(callback: Callable[[], Any]) -> str:
    """A stable human-readable key for a callback (qualname-based)."""
    target = getattr(callback, "func", callback)  # unwrap functools.partial
    name = getattr(target, "__qualname__", None)
    if name is None:
        name = type(target).__name__
    module = getattr(target, "__module__", "") or ""
    short = module.rsplit(".", 1)[-1]
    return f"{short}.{name}" if short else name


class Profiler:
    """1-in-N wall-clock sampler keyed by callback qualname."""

    def __init__(
        self,
        sample_every: int = 32,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.clock = clock
        #: key -> [sampled_calls, sampled_seconds]
        self.stats: dict[str, list[float]] = {}
        #: total callbacks routed through the profiler (sampled or not)
        self.calls = 0

    def run_sampled(self, callback: Callable[[], None]) -> None:
        """Run ``callback``, timing it on every N-th call of the profiler."""
        self.calls += 1
        if self.calls % self.sample_every:
            callback()
            return
        key = callback_key(callback)
        start = self.clock()
        try:
            callback()
        finally:
            elapsed = self.clock() - start
            entry = self.stats.get(key)
            if entry is None:
                self.stats[key] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    def record(self, key: str, seconds: float) -> None:
        """Manual hook for call sites that time themselves (operators)."""
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @property
    def sampled_calls(self) -> int:
        return int(sum(entry[0] for entry in self.stats.values()))

    def hot_report(self, top_k: int = 10) -> list[dict[str, Any]]:
        """Top-K callbacks by estimated total wall time, descending.

        ``est_calls``/``est_seconds`` scale the sampled figures by the
        sampling factor; ``record``-ed keys are exact (factor applies
        only to keys that went through ``run_sampled``, but the report
        does not distinguish — interpret hand-recorded keys as exact by
        construction when ``sample_every`` is 1).
        """
        factor = self.sample_every
        rows = []
        for key, (sampled, seconds) in self.stats.items():
            rows.append(
                {
                    "key": key,
                    "sampled": int(sampled),
                    "est_calls": int(sampled) * factor,
                    "est_seconds": seconds * factor,
                }
            )
        rows.sort(key=lambda row: (-row["est_seconds"], row["key"]))
        return rows[:top_k]

    def format_report(self, top_k: int = 10) -> str:
        """The ``--profile`` hot-span report, as a printable table."""
        rows = self.hot_report(top_k)
        if not rows:
            return "profile: no callbacks sampled"
        width = max(len(row["key"]) for row in rows)
        width = max(width, len("callback"))
        lines = [
            f"{'callback':<{width}}  {'est calls':>10}  {'sampled':>8}  {'est wall s':>10}",
        ]
        for row in rows:
            lines.append(
                f"{row['key']:<{width}}  {row['est_calls']:>10}  "
                f"{row['sampled']:>8}  {row['est_seconds']:>10.4f}"
            )
        return "\n".join(lines)


def install(profiler: Profiler | None) -> None:
    """Register ``profiler`` for every Simulator constructed afterwards."""
    from repro.sim import engine

    engine.install_profiler(profiler)


@contextmanager
def profiled(profiler: Profiler) -> Iterator[Profiler]:
    """Scope-install ``profiler``; uninstalls on exit even on error."""
    install(profiler)
    try:
        yield profiler
    finally:
        install(None)
