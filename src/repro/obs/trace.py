"""Virtual-time tracer: per-query span trees with exportable timelines.

Spans open and close at *simulator* timestamps (the tracer is handed a
clock callable, usually ``lambda: sim.now``), carry a parent link and
free-form ``key: value`` attributes, and nest into a tree per root. The
tree exports three ways:

* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON (complete
  ``"ph": "X"`` events, microsecond timestamps) loadable in
  ``chrome://tracing`` or Perfetto; each root span gets its own track
  (``tid``) so concurrent queries render as separate lanes.
* :meth:`Tracer.to_jsonl` — one flat JSON object per span, in creation
  order, for ad-hoc ``jq``/pandas digestion.
* :meth:`Span.tree` / :meth:`Tracer.forest` — nested dicts, used by the
  golden-file span-tree pin in the tests.

Instrumented code guards every call site with ``if tracer is not None``
so the disabled path costs a single predictable branch. For scale runs,
``Tracer(sample_every=N)`` applies head sampling — every Nth root trace
is kept in full, the rest are absorbed by a shared null span — which is
how production tracers bound their overhead without losing per-trace
detail.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator

#: keys every Chrome trace_event complete event must carry
_CHROME_REQUIRED = ("name", "ph", "ts", "dur", "pid", "tid")


def _zero_clock() -> float:
    return 0.0


class Span:
    """One timed node in a trace tree.

    Usable as a context manager for synchronous sections; long-lived
    virtual-time spans (a query race, an in-flight batch) are finished
    explicitly from the callback that ends them. ``finish`` is
    idempotent — the first close wins, so an error path may close a span
    defensively without clobbering the recorded end time.
    """

    __slots__ = ("name", "span_id", "parent", "start", "end", "_attrs", "_children", "_tracer")

    #: False only on the shared null span absorbing unsampled traces
    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent: "Span | None",
        start: float,
    ):
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.start = start
        self.end: float | None = None
        # Containers are created lazily: most spans in a scale run are
        # closed leaves (batch shipments, instant events) that never grow
        # children, and skipping the two allocations keeps the per-span
        # cost inside the tracing-on overhead budget.
        self._attrs: dict[str, Any] | None = None
        self._children: list[Span] | None = None
        self._tracer = tracer

    @property
    def attrs(self) -> dict[str, Any]:
        if self._attrs is None:
            self._attrs = {}
        return self._attrs

    @property
    def children(self) -> "list[Span]":
        if self._children is None:
            self._children = []
        return self._children

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key:value attributes; later values win."""
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)
        return self

    def child(self, name: str, at: float | None = None, **attrs: Any) -> "Span":
        """Open a child span under this one."""
        return self._tracer.begin(name, parent=self, at=at, **attrs)

    def event(self, name: str, at: float | None = None, **attrs: Any) -> "Span":
        """Record an instant (zero-duration) child marker."""
        return self._tracer.complete(name, self, at, at, attrs or None)

    def complete(
        self,
        name: str,
        start: float | None = None,
        end: float | None = None,
        **attrs: Any,
    ) -> "Span":
        """Record an already-closed child in one call (hot-path helper)."""
        return self._tracer.complete(name, self, start, end, attrs or None)

    def finish(self, at: float | None = None, **attrs: Any) -> "Span":
        """Close the span at ``at`` (default: the tracer's clock now)."""
        if attrs:
            if self._attrs is None:
                self._attrs = attrs
            else:
                self._attrs.update(attrs)
        if self.end is None:
            self.end = self._tracer._clock() if at is None else at
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def tree(self) -> dict[str, Any]:
        """Nested dict of this span and its descendants (golden-pin shape)."""
        attrs = self._attrs or {}
        return {
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end, 6) if self.end is not None else None,
            "attrs": {key: attrs[key] for key in sorted(attrs)},
            "children": [child.tree() for child in (self._children or ())],
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, start={self.start}, end={self.end})"


class _NullSpan(Span):
    """Absorbs every operation on an unsampled trace, recording nothing.

    Head sampling hands this shared sink out in place of a real root;
    call sites keep their ``span is not None`` guards and never notice.
    Sites on per-batch hot paths can additionally check ``span.recording``
    to skip building attribute dicts for traces that were never kept.
    """

    __slots__ = ()
    recording = False

    def annotate(self, **attrs: Any) -> "Span":
        return self

    def child(self, name: str, at: float | None = None, **attrs: Any) -> "Span":
        return self

    def event(self, name: str, at: float | None = None, **attrs: Any) -> "Span":
        return self

    def complete(
        self,
        name: str,
        start: float | None = None,
        end: float | None = None,
        **attrs: Any,
    ) -> "Span":
        return self

    def finish(self, at: float | None = None, **attrs: Any) -> "Span":
        return self


class Tracer:
    """Records spans against a virtual clock.

    >>> tracer = Tracer()
    >>> with tracer.begin("query", strategy="SEMI_JOIN") as root:
    ...     root.event("first_answer")
    Span('first_answer', ...)
    >>> [span.name for span in tracer.spans]
    ['query', 'first_answer']
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        sample_every: int = 1,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._clock = clock if clock is not None else _zero_clock
        self.spans: list[Span] = []
        self.roots: list[Span] = []
        self._next_id = 1
        #: head sampling: keep every Nth root trace in full, absorb the
        #: rest (the standard way production tracers bound their cost);
        #: 1 records everything
        self.sample_every = sample_every
        self._root_count = 0
        self._null = _NullSpan(self, "unsampled", 0, None, 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Swap the time source (e.g. once the simulator exists)."""
        self._clock = clock

    def begin(
        self,
        name: str,
        parent: Span | None = None,
        at: float | None = None,
        **attrs: Any,
    ) -> Span:
        if parent is None:
            if self.sample_every != 1:
                self._root_count += 1
                if (self._root_count - 1) % self.sample_every:
                    return self._null
        elif not parent.recording:
            return parent
        start = self._clock() if at is None else at
        span = Span(self, name, self._next_id, parent, start)
        self._next_id += 1
        if attrs:
            span._attrs = attrs
        if parent is None:
            self.roots.append(span)
        elif parent._children is None:
            parent._children = [span]
        else:
            parent._children.append(span)
        self.spans.append(span)
        return span

    def complete(
        self,
        name: str,
        parent: Span | None = None,
        start: float | None = None,
        end: float | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record a span whose whole lifetime is already known.

        One call instead of ``begin(...).finish(...)``, with ``attrs``
        passed as a plain dict (positional-friendly, no kwargs repacking)
        — per-batch hot paths use this to keep tracing-on overhead inside
        its budget.
        """
        if parent is None:
            if self.sample_every != 1:
                self._root_count += 1
                if (self._root_count - 1) % self.sample_every:
                    return self._null
        elif not parent.recording:
            return parent
        span = Span(
            self,
            name,
            self._next_id,
            parent,
            self._clock() if start is None else start,
        )
        self._next_id += 1
        span.end = span.start if end is None else end
        if attrs:
            span._attrs = attrs
        if parent is None:
            self.roots.append(span)
        elif parent._children is None:
            parent._children = [span]
        else:
            parent._children.append(span)
        self.spans.append(span)
        return span

    def finish_open(self, at: float | None = None) -> int:
        """Close every still-open span (export hygiene); returns how many."""
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.finish(at=at)
                closed += 1
        return closed

    def __len__(self) -> int:
        return len(self.spans)

    # -- exports -----------------------------------------------------------

    def forest(self) -> list[dict[str, Any]]:
        """Nested trees for every root span, in creation order."""
        return [root.tree() for root in self.roots]

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome ``trace_event`` JSON: one complete event per span.

        Virtual time units map to trace seconds (``ts`` is microseconds);
        each root span and its subtree share a ``tid`` so concurrent
        queries land on separate tracks.
        """
        events: list[dict[str, Any]] = []
        track: dict[int, int] = {}
        for span in self.spans:
            root = span
            while root.parent is not None:
                root = root.parent
            tid = track.setdefault(root.span_id, len(track) + 1)
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round(span.start * 1_000_000, 3),
                    "dur": round((end - span.start) * 1_000_000, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": _jsonable(span._attrs or {}),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_jsonl(self) -> str:
        """Flat JSONL: one span per line, creation order, parent by id."""
        lines = []
        for span in self.spans:
            lines.append(
                json.dumps(
                    {
                        "id": span.span_id,
                        "parent": span.parent.span_id if span.parent else None,
                        "name": span.name,
                        "start": span.start,
                        "end": span.end,
                        "attrs": _jsonable(span._attrs or {}),
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def iter_spans(self, name: str | None = None) -> Iterator[Span]:
        """All spans, optionally filtered by name."""
        for span in self.spans:
            if name is None or span.name == name:
                yield span


def _jsonable(attrs: dict[str, Any]) -> dict[str, Any]:
    """Attrs coerced to JSON-safe values (enums/objects become strings)."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [item if isinstance(item, (str, int, float, bool)) else str(item) for item in value]
        else:
            out[key] = str(value)
    return out


def validate_chrome_trace(document: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is valid trace_event JSON.

    Checks the JSON-object form: a ``traceEvents`` array whose entries
    carry the complete-event required keys with correctly typed values.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace document must be an object with a traceEvents array")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in _CHROME_REQUIRED:
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing required key {key!r}")
        if event["ph"] not in {"X", "B", "E", "i", "I", "C", "M"}:
            raise ValueError(f"traceEvents[{index}] has unknown phase {event['ph']!r}")
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)):
                raise ValueError(f"traceEvents[{index}].{key} must be numeric")
        if event["ph"] == "X" and event["dur"] < 0:
            raise ValueError(f"traceEvents[{index}] has negative duration")
        if "args" in event:
            json.dumps(event["args"])  # must be serialisable
