"""Discrete-event simulation kernel.

The PlanetLab deployment in the paper is replaced by a deterministic
discrete-event simulator: :class:`~repro.sim.engine.Simulator` provides a
virtual clock and event queue, :mod:`repro.sim.latency` models wide-area
round-trip times across two continents, and :mod:`repro.sim.stats` collects
counters and histograms that the experiment harness reports.
"""

from repro.sim.engine import Event, EventGroup, Simulator
from repro.sim.latency import LatencyModel, TwoContinentLatencyModel, UniformLatencyModel
from repro.sim.network import Message, SimNetwork
from repro.sim.shard import (
    ShardContext,
    ShardProgram,
    ShardRunReport,
    ShardedSimulator,
    run_sharded,
    shard_of_key,
)
from repro.sim.stats import Counter, Gauge, Histogram, StatsRegistry

__all__ = [
    "Event",
    "EventGroup",
    "Simulator",
    "ShardContext",
    "ShardProgram",
    "ShardRunReport",
    "ShardedSimulator",
    "run_sharded",
    "shard_of_key",
    "LatencyModel",
    "TwoContinentLatencyModel",
    "UniformLatencyModel",
    "Message",
    "SimNetwork",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsRegistry",
]
