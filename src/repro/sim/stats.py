"""Counters, gauges, and histograms for experiment reporting.

These are the primitive metric types; :mod:`repro.obs.metrics` builds the
labelled registry and the Prometheus/JSON exporters on top of them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A named value that can go up and down (queue depths, cache sizes)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Streaming histogram with exact or bounded-reservoir retention.

    By default every raw sample is kept, which gives exact quantiles and
    is the right trade for experiment-sized runs (<= a few hundred
    thousand samples). Pass ``reservoir_size`` to cap retention: samples
    beyond the cap are admitted by Vitter's Algorithm R with a private
    seeded RNG, so million-event runs hold memory constant and two runs
    with the same seed and sample stream keep byte-identical reservoirs.
    ``count``/``mean``/``minimum``/``maximum``/``total`` stay exact in
    both modes; only the quantiles become approximate once the reservoir
    overflows.
    """

    def __init__(self, name: str, reservoir_size: int | None = None, seed: int = 0):
        if reservoir_size is not None and reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self.name = name
        self.samples: list[float] = []
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed) if reservoir_size is not None else None
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        size = self.reservoir_size
        if size is None or len(self.samples) < size:
            self.samples.append(value)
        else:
            # Algorithm R: keep each of the first n samples with prob size/n.
            # random() * count instead of randrange(count): same uniform
            # slot draw, but ~4x cheaper on the per-sample hot path (the
            # float bias is immeasurable at reservoir-scale counts).
            slot = int(self._rng.random() * self._count)
            if slot < size:
                self.samples[slot] = value

    def extend(self, values: list[float]) -> None:
        for value in values:
            self.observe(value)

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Total samples observed (exact, even when the reservoir is full)."""
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of every observed sample."""
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            return math.nan
        return self._total / self._count

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    def quantile(self, q: float) -> float:
        """q-quantile (nearest-rank) of the retained samples.

        Exact in full-retention mode; an unbiased estimate in reservoir
        mode once more than ``reservoir_size`` samples have been seen.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def cdf_points(self) -> list[tuple[float, float]]:
        """(value, fraction <= value) pairs, for plotting."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        n = len(ordered)
        points: list[tuple[float, float]] = []
        for index, value in enumerate(ordered, start=1):
            if points and points[-1][0] == value:
                points[-1] = (value, index / n)
            else:
                points.append((value, index / n))
        return points


@dataclass
class StatsRegistry:
    """Groups counters, gauges, and histograms for one experiment run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, reservoir_size: int | None = None, seed: int = 0
    ) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(
                name, reservoir_size=reservoir_size, seed=seed
            )
        return self.histograms[name]

    def summary(self) -> dict[str, float]:
        """Flat numeric summary: counters, gauges, and histogram means."""
        out: dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, histogram in self.histograms.items():
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.count"] = histogram.count
        return out
