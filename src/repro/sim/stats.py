"""Counters and histograms for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Streaming histogram that keeps raw samples for exact quantiles.

    Experiment sizes here are modest (<= a few hundred thousand samples),
    so exact retention is simpler and more accurate than sketching.
    """

    def __init__(self, name: str):
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    def extend(self, values: list[float]) -> None:
        self.samples.extend(values)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def quantile(self, q: float) -> float:
        """Exact q-quantile (nearest-rank) of the observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def cdf_points(self) -> list[tuple[float, float]]:
        """(value, fraction <= value) pairs, for plotting."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        n = len(ordered)
        points: list[tuple[float, float]] = []
        for index, value in enumerate(ordered, start=1):
            if points and points[-1][0] == value:
                points[-1] = (value, index / n)
            else:
                points.append((value, index / n))
        return points


@dataclass
class StatsRegistry:
    """Groups counters and histograms created during one experiment run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def summary(self) -> dict[str, float]:
        """Flat numeric summary: counter values and histogram means."""
        out: dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, histogram in self.histograms.items():
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.count"] = histogram.count
        return out
