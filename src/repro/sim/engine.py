"""Event loop with a virtual clock.

A minimal but complete discrete-event engine: the heap holds plain
``(time, seq, event)`` tuples — ordering is decided entirely by the
``(time, seq)`` prefix, so ties are FIFO and the slotted :class:`Event`
handles are never compared — and ``run`` pops them in time order and
advances the clock. Everything the deployment simulation does — message
delivery, query timeouts, churn — is scheduled here, so experiments are
fully deterministic and run in virtual (not wall-clock) time.

The engine keeps two O(1) counters alongside the heap: the number of
*live* (scheduled, not yet fired or cancelled) events, which backs
:attr:`Simulator.pending`, and the number of cancelled entries still
sitting in the heap. Cancelled entries are skipped lazily when popped;
when they outnumber the live ones the heap is compacted in one pass so a
cancel-heavy workload (e.g. mass early termination of pipelined queries)
cannot leave the heap dominated by corpses.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: event lifecycle states (module-level ints: cheaper than an Enum in the
#: engine's hot loop, and they never leave this module)
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

#: compact the heap only once this many cancelled entries have piled up —
#: below that, the O(n) rebuild costs more than lazily skipping them
_COMPACT_MIN = 64

#: process-wide profiler hook (see :mod:`repro.obs.profile`): simulators
#: snapshot it at construction, so installing a profiler affects every
#: simulator built afterwards — including ones experiments build
#: internally — while the default hot loop pays one ``is None`` check
_profiler = None


def install_profiler(profiler) -> None:
    """Set (or clear, with None) the profiler new simulators pick up."""
    global _profiler
    _profiler = profiler


def installed_profiler():
    """The currently installed process-wide profiler, or None."""
    return _profiler


class Event:
    """Handle for one scheduled callback.

    A slotted record of ``(time, seq, callback)`` plus lifecycle state.
    Handles are deliberately *unordered*: heap ordering is carried by the
    ``(time, seq)`` tuple prefix of each heap entry, never by comparing
    handles, so creating one costs a plain ``__init__`` and no generated
    comparison methods.
    """

    __slots__ = ("time", "seq", "callback", "_sim", "_group", "_state")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], sim: "Simulator"):
        self.time = time
        self.seq = seq
        self.callback = callback
        self._sim = sim
        self._group: "EventGroup | None" = None
        self._state = _PENDING

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` took effect (never for fired events)."""
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        A no-op after the event has fired or was already cancelled, so
        callbacks may safely cancel their own (already popped) handle.
        """
        if self._state == _PENDING:
            self._state = _CANCELLED
            self._sim._on_cancel(self)


class Simulator:
    """Virtual-time event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._processed = 0
        #: scheduled, not yet fired or cancelled — backs O(1) ``pending``
        self._live = 0
        #: cancelled entries still physically in the heap
        self._cancelled_in_heap = 0
        #: sampled wall-clock profiler, or None (snapshot of the module
        #: hook; assignable per-simulator)
        self.profiler = _profiler

    def _push(self, time: float, callback: Callable[[], None]) -> Event:
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time.

        The event fires at exactly ``time`` — not ``now + (time - now)``,
        which can differ by an ulp. Cross-shard delivery relies on this:
        an arrival time computed on the source shard must reproduce
        bit-identically on the destination.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time} < now={self.now})"
            )
        return self._push(time, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` callbacks. Returns the number of
        events processed by this call.
        """
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        profiler = self.profiler
        while queue:
            if max_events is not None and processed >= max_events:
                break
            time = queue[0][0]
            if until is not None and time > until:
                self.now = until
                break
            event = heappop(queue)[2]
            if event._state != _PENDING:
                self._cancelled_in_heap -= 1
                continue
            event._state = _FIRED
            self._live -= 1
            group = event._group
            if group is not None:
                group._events.pop(event.seq, None)
            self.now = time
            if profiler is None:
                event.callback()
            else:
                profiler.run_sampled(event.callback)
            processed += 1
        self._processed += processed
        return processed

    def run_with_inbox(
        self,
        inbox: list,
        start: int,
        handler: Callable[[Any], None],
        until: float | None = None,
    ) -> tuple[int, int]:
        """Drain the heap merged with a pre-sorted batch of deliveries.

        ``inbox[start:]`` holds tuples whose first element is the arrival
        time (ascending) and whose last element is a payload; each fires
        as ``handler(payload)`` at its arrival time, interleaved with
        heap events in time order. This is the sharded backends' bulk
        path for cross-shard messages: a sorted batch skips per-message
        ``schedule_at`` entirely — no :class:`Event` allocation, no
        heap traffic, no per-message closure — while local events keep
        full heap semantics (cancellation, groups).

        When an inbox arrival ties a heap event exactly, the inbox entry
        fires first. Heap FIFO seq cannot order these ties (inbox entries
        never entered the heap); any fixed rule is deterministic, and
        both sharded backends share this one.

        Returns ``(processed, next_index)`` — consumption resumes from
        ``next_index`` after the bound; entries beyond it stay pending
        and must be folded into the shard's next-event time.
        """
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        profiler = self.profiler
        index = start
        end = len(inbox)
        while True:
            entry = None
            if index < end:
                entry = inbox[index]
                if queue and queue[0][0] < entry[0]:
                    entry = None
            if entry is not None:
                time = entry[0]
                if until is not None and time > until:
                    self.now = until
                    break
                index += 1
                self.now = time
                if profiler is None:
                    handler(entry[-1])
                else:
                    profiler.run_sampled(lambda: handler(entry[-1]))
                processed += 1
                continue
            if not queue:
                break
            time = queue[0][0]
            if until is not None and time > until:
                self.now = until
                break
            event = heappop(queue)[2]
            if event._state != _PENDING:
                self._cancelled_in_heap -= 1
                continue
            event._state = _FIRED
            self._live -= 1
            group = event._group
            if group is not None:
                group._events.pop(event.seq, None)
            self.now = time
            if profiler is None:
                event.callback()
            else:
                profiler.run_sampled(event.callback)
            processed += 1
        self._processed += processed
        return processed, index

    def step(self) -> bool:
        """Process exactly one event. Returns False if the queue was empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        """Total events processed over the simulator's lifetime."""
        return self._processed

    def group(self) -> "EventGroup":
        """A new cancellable group of events on this simulator."""
        return EventGroup(self)

    # -- internal bookkeeping ---------------------------------------------

    def _on_cancel(self, event: Event) -> None:
        """Counter upkeep for one cancellation; compacts when worthwhile.

        Compaction triggers when cancelled entries outnumber the live
        ones: one O(n) rebuild halves the heap, so its amortised cost per
        cancelled event is O(1) and mass cancellations cannot leave the
        heap dominated by corpses until they happen to be popped.
        """
        self._live -= 1
        self._cancelled_in_heap += 1
        group = event._group
        if group is not None:
            group._events.pop(event.seq, None)
        if (
            self._cancelled_in_heap > _COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._queue)
        ):
            # In-place: ``run`` may be mid-drain holding a reference to
            # this exact list, so the object must never be swapped out.
            self._queue[:] = [
                entry for entry in self._queue if entry[2]._state == _PENDING
            ]
            heapq.heapify(self._queue)
            self._cancelled_in_heap = 0


class EventGroup:
    """A cancellable set of scheduled events.

    Groups model one logical activity's in-flight work — e.g. every batch
    of a pipelined query — so early termination can cancel *all* of it in
    one call. The engine discards each event from its group as it fires
    (a seq-keyed dict removal — no per-event closure is allocated);
    :meth:`cancel` marks the remainder so the engine skips them, and a
    cancelled group silently refuses new work (a late callback scheduling
    a follow-up after cancellation is a no-op, not a resurrection).

    >>> sim = Simulator()
    >>> group = sim.group()
    >>> fired = []
    >>> _ = group.schedule(1.0, lambda: fired.append("a"))
    >>> _ = group.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.run(until=1.5)
    >>> group.cancel()
    1
    >>> _ = sim.run()
    >>> fired
    ['a']
    """

    __slots__ = ("sim", "cancelled", "_events")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.cancelled = False
        self._events: dict[int, Event] = {}  # seq -> event, still pending

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event | None:
        """Schedule ``callback`` in this group; None if already cancelled."""
        if self.cancelled:
            return None
        event = self.sim.schedule(delay, callback)
        event._group = self
        self._events[event.seq] = event
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event | None:
        """Schedule at an absolute virtual time; None if already cancelled."""
        if self.cancelled:
            return None
        event = self.sim.schedule_at(time, callback)
        event._group = self
        self._events[event.seq] = event
        return event

    def cancel(self) -> int:
        """Cancel every still-pending event; returns how many were live."""
        self.cancelled = True
        events = list(self._events.values())
        self._events.clear()
        for event in events:
            event.cancel()
        return len(events)

    @property
    def pending(self) -> int:
        """Events scheduled through this group that have not yet fired."""
        return len(self._events)


class Process:
    """Convenience base for simulation actors that hold a Simulator handle."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)


def run_callbacks(callbacks: list[Callable[[], Any]]) -> list[Any]:
    """Run plain callbacks immediately; helper for non-simulated paths."""
    return [callback() for callback in callbacks]
