"""Event loop with a virtual clock.

A minimal but complete discrete-event engine: events are (time, seq,
callback) triples in a heap; ``run`` pops them in time order and advances
the clock. Everything the deployment simulation does — message delivery,
query timeouts, churn — is scheduled here, so experiments are fully
deterministic and run in virtual (not wall-clock) time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering is (time, seq) so ties are FIFO."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Virtual-time event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self.now, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` callbacks. Returns the number of
        events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            processed += 1
        self._processed += processed
        return processed

    def step(self) -> bool:
        """Process exactly one event. Returns False if the queue was empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Total events processed over the simulator's lifetime."""
        return self._processed

    def group(self) -> "EventGroup":
        """A new cancellable group of events on this simulator."""
        return EventGroup(self)


class EventGroup:
    """A cancellable set of scheduled events.

    Groups model one logical activity's in-flight work — e.g. every batch
    of a pipelined query — so early termination can cancel *all* of it in
    one call. Events drop out of the group as they fire; :meth:`cancel`
    marks the remainder so the engine skips them, and a cancelled group
    silently refuses new work (a late callback scheduling a follow-up
    after cancellation is a no-op, not a resurrection).

    >>> sim = Simulator()
    >>> group = sim.group()
    >>> fired = []
    >>> _ = group.schedule(1.0, lambda: fired.append("a"))
    >>> _ = group.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.run(until=1.5)
    >>> group.cancel()
    1
    >>> _ = sim.run()
    >>> fired
    ['a']
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.cancelled = False
        self._events: dict[int, Event] = {}  # seq -> event, still pending

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event | None:
        """Schedule ``callback`` in this group; None if already cancelled."""
        if self.cancelled:
            return None
        event: Event | None = None

        def fire() -> None:
            self._events.pop(event.seq, None)
            callback()

        event = self.sim.schedule(delay, fire)
        self._events[event.seq] = event
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event | None:
        """Schedule at an absolute virtual time; None if already cancelled."""
        return self.schedule(time - self.sim.now, callback)

    def cancel(self) -> int:
        """Cancel every still-pending event; returns how many were live."""
        self.cancelled = True
        live = len(self._events)
        for event in self._events.values():
            event.cancel()
        self._events.clear()
        return live

    @property
    def pending(self) -> int:
        """Events scheduled through this group that have not yet fired."""
        return len(self._events)


class Process:
    """Convenience base for simulation actors that hold a Simulator handle."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)


def run_callbacks(callbacks: list[Callable[[], Any]]) -> list[Any]:
    """Run plain callbacks immediately; helper for non-simulated paths."""
    return [callback() for callback in callbacks]
