"""Ring-sharded simulation kernel with conservative-lookahead windows.

The single-heap :class:`~repro.sim.engine.Simulator` processes one event
at a time; at hundreds of thousands of peers the heap becomes the whole
story. This module partitions the identifier ring into ``num_shards``
contiguous *region shards*, each running its own private event loop, and
synchronizes them with the classic conservative-lookahead protocol
(Chandy/Misra/Bryant in windowed form):

* **The invariant.** Every cross-shard interaction is a message with
  delay ``>= lookahead`` — the minimum latency the
  :class:`~repro.net.Transport` can draw for an inter-region hop
  (:meth:`~repro.net.Transport.min_hop_delay`). Intra-shard work may use
  any delay.
* **The window.** Let ``t_i`` be shard ``i``'s next pending time
  (folding in the arrival times of any in-flight messages destined to
  it). Shard ``i`` may safely process every event strictly before
  ``min(min_{j != i} t_j, t_i + lookahead) + lookahead``: a direct
  message from shard ``j`` arrives at ``>= t_j + lookahead``, and a
  chain that *starts* at ``i`` (``i -> j -> i``) cannot return before
  ``t_i + 2 * lookahead``. This per-shard bound is never smaller than
  the classic global ``t_min + lookahead`` window, and it lets a lone
  active shard advance two lookaheads per round — sparse phases collapse
  toward the true cross-shard dependency count instead of paying one
  synchronization per lookahead of virtual time.
* **Determinism.** Shard RNGs are spawned from one seed with stable
  labels; shards drain each window in pinned order ``0..S-1``; and the
  cross-shard outbox is merged in sorted ``(arrival, src_shard, seq)``
  order before delivery, so re-runs (and different backends) schedule
  identical FIFO-tied sequences. The same program run at 1 shard and at
  N shards sees identical per-shard event streams.
* **The IPC batching invariant (process backend).** Each window costs
  exactly one round trip per *stepped* shard: the parent sends every
  pending inbound block together with the drain bound, and the worker
  replies with its outgoing messages packed as one serialized block per
  destination shard plus its next event time. A block is serialized
  once, in the worker that produced it; the parent forwards the raw
  bytes without deserializing. Because global message sequence numbers
  are assigned in pinned shard order, sorting a destination's merged
  inbound by ``(arrival, src_shard, position-within-block)`` reproduces
  the global ``(arrival, src_shard, seq)`` merge order bit-for-bit.

Two layers are exposed. :class:`ShardedSimulator` is the in-process
kernel: real :class:`Simulator` instances, arbitrary callbacks, usable
anywhere a ``Simulator`` is (each shard view quacks like one). On top,
:func:`run_sharded` executes a picklable :class:`ShardProgram` under a
chosen backend — ``round_robin`` (sequential, measures per-shard busy
time so aggregate capacity is still meaningful on one core) or
``process`` (one persistent OS process per shard, true parallelism on
multi-core hosts; cross-shard messages travel as packed pickle blocks
over pipes).
"""

from __future__ import annotations

import math
import pickle
import random
import time as _time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.common.errors import ShardWorkerError
from repro.common.ids import KEY_SPACE
from repro.common.rng import make_rng, spawn_rng
from repro.sim.engine import Event, EventGroup, Simulator

__all__ = [
    "ShardedSimulator",
    "ShardView",
    "ShardContext",
    "ShardProgram",
    "ShardReport",
    "ShardRunReport",
    "ShardWorkerError",
    "run_sharded",
    "shard_of_key",
]

_INF = math.inf


def shard_of_key(key: int, num_shards: int) -> int:
    """Region shard owning ring position ``key`` (contiguous partition).

    The ring ``[0, KEY_SPACE)`` splits into ``num_shards`` equal arcs;
    a DHT node (or stored key) belongs to the arc containing its id.
    Contiguity matters: Chord-style routing and successor replication
    mostly touch ring-adjacent nodes, so region sharding keeps the bulk
    of traffic intra-shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return (key % KEY_SPACE) * num_shards // KEY_SPACE


def _plan_bounds(
    tops: list[float], lookahead: float, until: float | None
) -> list[float]:
    """Exclusive per-shard drain bounds for one synchronization window.

    ``tops[i]`` is shard i's effective next-event time (``inf`` when it
    has nothing pending). Shard i may run strictly before
    ``min(min_{j != i} tops[j], tops[i] + lookahead) + lookahead`` — see
    the module docstring for why that is safe — clamped to ``until``.
    The exclusive end is realized with ``nextafter`` because
    :meth:`Simulator.run` treats its ``until`` inclusively and a message
    may arrive exactly at the bound.
    """
    lowest = second = _INF
    lowest_at = -1
    for index, top in enumerate(tops):
        if top < lowest:
            second = lowest
            lowest = top
            lowest_at = index
        elif top < second:
            second = top
    bounds: list[float] = []
    nextafter = math.nextafter
    for index, top in enumerate(tops):
        others = second if index == lowest_at else lowest
        limit = others if others < top + lookahead else top + lookahead
        bound = nextafter(limit + lookahead, -_INF)
        if until is not None and until < bound:
            bound = until
        bounds.append(bound)
    return bounds


@dataclass(frozen=True)
class _CrossShardEvent:
    """One in-flight cross-shard message (kernel layer: a callback)."""

    arrival: float
    src_shard: int
    seq: int
    dst_shard: int
    callback: Callable[[], None]

    @property
    def order(self) -> tuple[float, int, int]:
        return (self.arrival, self.src_shard, self.seq)


class ShardView:
    """One shard's clock, presented with the :class:`Simulator` surface.

    Subsystems built against ``Simulator`` (the hybrid engine, the PIER
    dataflow, obs collectors) can hold a view instead and never know the
    kernel is sharded. Scheduling is local to the shard; crossing shards
    goes through :meth:`send`, which enforces the lookahead invariant.
    """

    def __init__(self, parent: "ShardedSimulator", shard_id: int):
        self.parent = parent
        self.shard_id = shard_id
        self.sim = parent.shards[shard_id]
        self.rng = parent.rngs[shard_id]

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule_at(time, callback)

    def group(self) -> EventGroup:
        return self.sim.group()

    @property
    def pending(self) -> int:
        return self.sim.pending

    @property
    def processed(self) -> int:
        return self.sim.processed

    def send(self, dst_shard: int, delay: float, callback: Callable[[], None]) -> None:
        """Deliver ``callback`` on ``dst_shard`` after ``delay``."""
        self.parent.send(self.shard_id, dst_shard, delay, callback)

    def run(self, until: float | None = None) -> int:
        """Drain the *whole* kernel (windowed), not just this shard.

        Events on one shard may depend on cross-shard messages, so a
        lone-shard drain could deadlock; synchronous callers (e.g.
        ``DataflowExecutor.execute``) get the safe aggregate drain.
        """
        return self.parent.run(until=until)


class ShardedSimulator:
    """In-process sharded kernel: S event loops under one windowed drain.

    Drop-in for a :class:`Simulator` at the aggregate level (``now``,
    ``pending``, ``processed``, ``run``), with :meth:`shard` handing out
    per-shard views. With ``num_shards=1`` the window machinery
    short-circuits to a plain drain — the honest baseline the speedup
    and determinism checks compare against.
    """

    def __init__(
        self,
        num_shards: int,
        lookahead: float,
        seed: int | random.Random | None = 0,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > 1 and lookahead <= 0:
            raise ValueError(
                f"lookahead must be positive with {num_shards} shards, got {lookahead}"
            )
        self.num_shards = num_shards
        self.lookahead = lookahead
        root = make_rng(seed)
        self.rngs = [spawn_rng(root, f"shard.{i}") for i in range(num_shards)]
        self.shards = [Simulator() for _ in range(num_shards)]
        self._views = [ShardView(self, i) for i in range(num_shards)]
        self._outbox: list[_CrossShardEvent] = []
        self._next_msg_seq = 0
        #: wall-clock seconds each shard spent draining its windows
        self.busy_seconds = [0.0] * num_shards
        #: completed synchronization windows
        self.windows = 0

    # ------------------------------------------------------------------
    # Aggregate Simulator surface
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Frontier virtual time (the furthest-ahead shard clock)."""
        return max(shard.now for shard in self.shards)

    @property
    def pending(self) -> int:
        """Live events across all shards plus in-flight cross-shard messages."""
        return sum(shard.pending for shard in self.shards) + len(self._outbox)

    @property
    def processed(self) -> int:
        """Total events processed across all shards."""
        return sum(shard.processed for shard in self.shards)

    def shard(self, shard_id: int) -> ShardView:
        return self._views[shard_id]

    def shard_for_key(self, key: int) -> ShardView:
        return self._views[shard_of_key(key, self.num_shards)]

    def attach_profiler(self, profiler, shard_id: int | None = None) -> None:
        """Install a :class:`~repro.obs.profile.Profiler` on shard loops.

        With ``shard_id`` the profiler samples that one shard's event
        callbacks; without it every shard samples into the same profiler
        (its aggregation is by callback key, so per-shard attribution
        uses one profiler per shard). Pass ``None`` as the profiler to
        detach.
        """
        targets = self.shards if shard_id is None else [self.shards[shard_id]]
        for sim in targets:
            sim.profiler = profiler

    # ------------------------------------------------------------------
    # Cross-shard messaging
    # ------------------------------------------------------------------

    def send(
        self, src_shard: int, dst_shard: int, delay: float, callback: Callable[[], None]
    ) -> None:
        """Schedule ``callback`` on ``dst_shard`` after ``delay``.

        Same-shard sends are ordinary local scheduling. Cross-shard sends
        must respect the lookahead invariant (``delay >= lookahead``) —
        it is what makes the synchronization windows safe — and are held
        in the outbox until the next window boundary, where they merge in
        pinned ``(arrival, src_shard, seq)`` order.
        """
        if src_shard == dst_shard:
            self.shards[src_shard].schedule(delay, callback)
            return
        if delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} violates lookahead {self.lookahead}"
            )
        arrival = self.shards[src_shard].now + delay
        self._outbox.append(
            _CrossShardEvent(arrival, src_shard, self._next_msg_seq, dst_shard, callback)
        )
        self._next_msg_seq += 1

    def _deliver_outbox(self) -> None:
        if not self._outbox:
            return
        self._outbox.sort(key=lambda m: m.order)
        for message in self._outbox:
            self.shards[message.dst_shard].schedule_at(message.arrival, message.callback)
        self._outbox.clear()

    def _next_event_time(self) -> float:
        """Earliest queued-event time across shards (inf when all idle).

        Peeks raw heap tops; a cancelled corpse at the top only makes the
        estimate *earlier* than the true next live event, which shrinks
        the window — conservative, never unsafe.
        """
        t_min = _INF
        for shard in self.shards:
            if shard._queue:
                top = shard._queue[0][0]
                if top < t_min:
                    t_min = top
        return t_min

    # ------------------------------------------------------------------
    # Windowed drain
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> int:
        """Drain all shards in conservative-lookahead windows.

        Returns events processed by this call. Stops when every shard is
        idle and no messages are in flight, or when virtual time would
        pass ``until`` (shard clocks then rest exactly at ``until``,
        matching :meth:`Simulator.run` semantics).
        """
        perf = _time.perf_counter
        processed = 0
        if self.num_shards == 1:
            # Plain drain: no windows, no barrier overhead — the honest
            # single-shard baseline.
            self._deliver_outbox()
            shard = self.shards[0]
            start = perf()
            processed = shard.run(until=until)
            self.busy_seconds[0] += perf() - start
            return processed
        shards = self.shards
        busy = self.busy_seconds
        lookahead = self.lookahead
        while True:
            self._deliver_outbox()
            tops = [s._queue[0][0] if s._queue else _INF for s in shards]
            t_min = min(tops)
            if t_min == _INF:
                break
            if until is not None and t_min > until:
                for shard in shards:
                    if shard.now < until:
                        shard.now = until
                break
            bounds = _plan_bounds(tops, lookahead, until)
            for shard_id in range(self.num_shards):  # pinned order
                if tops[shard_id] == _INF:
                    continue
                shard = shards[shard_id]
                start = perf()
                processed += shard.run(until=bounds[shard_id])
                busy[shard_id] += perf() - start
            self.windows += 1
        return processed


# ----------------------------------------------------------------------
# Portable shard programs (round-robin and process backends)
# ----------------------------------------------------------------------


class ShardContext:
    """What a :class:`ShardProgram` sees: its clock, RNG, and mailbox.

    The context is backend-neutral — under the process backend it lives
    inside the worker process, so programs never hold references that
    would have to cross a pipe. Cross-shard communication is payload
    data only, delivered to the destination program's ``on_message``.
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        lookahead: float,
        rng: random.Random,
    ):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lookahead = lookahead
        self.rng = rng
        self.sim = Simulator()
        #: payload messages produced this window, drained by the backend
        self._outgoing: list[tuple[float, int, Any]] = []
        self._program: "ShardProgram | None" = None
        #: the program's bound ``on_message`` — cached so local loopback
        #: and inbound delivery cost one C-level ``partial`` call per
        #: message instead of a lambda frame plus attribute walks
        self._handler: Callable[["ShardContext", Any], None] | None = None

    def bind(self, program: "ShardProgram") -> None:
        self._program = program
        self._handler = program.on_message

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def send(self, dst_shard: int, delay: float, payload: Any) -> None:
        """Send ``payload`` to ``dst_shard``; local sends loop back."""
        if dst_shard == self.shard_id:
            handler = self._handler
            if handler is None:
                handler = self._handler = self._program.on_message
            self.sim.schedule(delay, partial(handler, self, payload))
            return
        if delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} violates lookahead {self.lookahead}"
            )
        self._outgoing.append((self.sim.now + delay, dst_shard, payload))


class ShardProgram:
    """A per-shard actor: seed events in ``start``, react in ``on_message``.

    Subclasses must be constructible inside a worker process (the
    ``factory`` passed to :func:`run_sharded` builds one per shard) and
    must confine all cross-shard effects to ``ctx.send`` payloads.
    ``digest()`` returns a picklable summary merged into the run report
    — determinism checks compare digests across shard counts/backends.
    """

    def start(self, ctx: ShardContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_message(self, ctx: ShardContext, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def digest(self) -> Any:
        return None


@dataclass
class ShardReport:
    """One shard's outcome: events drained, wall-clock busy time, digest."""

    shard_id: int
    processed: int
    busy_seconds: float
    final_time: float
    digest: Any = None
    #: process backend only: wall seconds this shard's worker spent
    #: packing outbound message blocks / unpacking inbound ones
    ipc_serialize_seconds: float = 0.0
    ipc_deserialize_seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        """Events per second of *busy* time (this shard's drain rate)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.processed / self.busy_seconds


@dataclass
class ShardRunReport:
    """Aggregate outcome of :func:`run_sharded`."""

    num_shards: int
    backend: str
    lookahead: float
    shards: list[ShardReport] = field(default_factory=list)
    windows: int = 0
    wall_seconds: float = 0.0
    cross_messages: int = 0

    @property
    def processed(self) -> int:
        return sum(s.processed for s in self.shards)

    @property
    def final_time(self) -> float:
        return max((s.final_time for s in self.shards), default=0.0)

    @property
    def aggregate_events_per_second(self) -> float:
        """Sum of per-shard busy-time drain rates.

        This is the kernel's *capacity*: what the shard set sustains when
        every shard drains concurrently. Under the sequential round-robin
        backend shards time-share one core, so wall-clock throughput is
        ``processed / wall_seconds`` instead — both are reported and the
        benchmark records both.
        """
        return sum(s.events_per_second for s in self.shards)

    @property
    def wall_events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.processed / self.wall_seconds

    @property
    def ipc_serialize_seconds(self) -> float:
        return sum(s.ipc_serialize_seconds for s in self.shards)

    @property
    def ipc_deserialize_seconds(self) -> float:
        return sum(s.ipc_deserialize_seconds for s in self.shards)

    def digests(self) -> list[Any]:
        return [s.digest for s in self.shards]


def _run_round_robin(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int,
    until: float | None,
) -> ShardRunReport:
    root = make_rng(seed)
    contexts: list[ShardContext] = []
    programs: list[ShardProgram] = []
    for shard_id in range(num_shards):
        rng = spawn_rng(root, f"shard.{shard_id}")
        ctx = ShardContext(shard_id, num_shards, lookahead, rng)
        program = factory(shard_id, num_shards, rng)
        ctx.bind(program)
        contexts.append(ctx)
        programs.append(program)
    report = ShardRunReport(num_shards=num_shards, backend="round_robin", lookahead=lookahead)
    perf = _time.perf_counter
    wall_start = perf()
    busy = [0.0] * num_shards
    for ctx, program in zip(contexts, programs):
        program.start(ctx)
    sims = [ctx.sim for ctx in contexts]
    handlers = [partial(ctx._handler, ctx) for ctx in contexts]
    # Per-destination inboxes of (arrival, src, seq, payload), kept
    # sorted; indexes[d] marks the consumed prefix. Inbox entries fire
    # through Simulator.run_with_inbox — the bulk path that skips
    # per-message Event/heap/closure costs — so seq (globally unique,
    # assigned in pinned drain order) both pins the (arrival, src_shard,
    # seq) merge order and keeps payloads out of tuple comparisons.
    inboxes: list[list[tuple[float, int, int, Any]]] = [[] for _ in range(num_shards)]
    indexes = [0] * num_shards
    fresh: list[list[tuple[float, int, int, Any]]] = [[] for _ in range(num_shards)]
    msg_seq = 0

    def collect(src: int) -> None:
        nonlocal msg_seq
        outgoing = contexts[src]._outgoing
        if outgoing:
            for arrival, dst, payload in outgoing:
                fresh[dst].append((arrival, src, msg_seq, payload))
                msg_seq += 1
            outgoing.clear()

    for shard_id in range(num_shards):  # messages sent during start()
        collect(shard_id)
    while True:
        for dst in range(num_shards):
            if fresh[dst]:
                inbox = inboxes[dst]
                if indexes[dst]:
                    del inbox[: indexes[dst]]
                    indexes[dst] = 0
                inbox.extend(fresh[dst])
                inbox.sort()  # timsort: sorted leftover + new batch
                fresh[dst].clear()
        tops = []
        for shard_id in range(num_shards):
            sim = sims[shard_id]
            top = sim._queue[0][0] if sim._queue else _INF
            inbox = inboxes[shard_id]
            if indexes[shard_id] < len(inbox):
                head = inbox[indexes[shard_id]][0]
                if head < top:
                    top = head
            tops.append(top)
        t_min = min(tops)
        if t_min == _INF:
            break
        if until is not None and t_min > until:
            for sim in sims:
                if sim.now < until:
                    sim.now = until
            break
        if num_shards == 1:
            start = perf()
            _, indexes[0] = sims[0].run_with_inbox(
                inboxes[0], indexes[0], handlers[0], until
            )
            busy[0] += perf() - start
            collect(0)
            report.windows += 1
            if not fresh[0]:
                break
            continue
        bounds = _plan_bounds(tops, lookahead, until)
        for shard_id in range(num_shards):  # pinned order
            if tops[shard_id] == _INF:
                continue
            start = perf()
            _, indexes[shard_id] = sims[shard_id].run_with_inbox(
                inboxes[shard_id],
                indexes[shard_id],
                handlers[shard_id],
                bounds[shard_id],
            )
            busy[shard_id] += perf() - start
            collect(shard_id)
        report.windows += 1
    report.wall_seconds = perf() - wall_start
    report.cross_messages = msg_seq
    for shard_id, (ctx, program) in enumerate(zip(contexts, programs)):
        report.shards.append(
            ShardReport(
                shard_id=shard_id,
                processed=ctx.sim.processed,
                busy_seconds=busy[shard_id],
                final_time=ctx.sim.now,
                digest=program.digest(),
            )
        )
    return report


# ----------------------------------------------------------------------
# Process backend: persistent workers, one round trip per window
# ----------------------------------------------------------------------


def _process_worker(conn, factory, shard_id, num_shards, lookahead, seed) -> None:
    """One shard's event loop inside its own (persistent) OS process.

    Protocol, one message pair per window:

    * recv ``("step", blocks, bound)`` — ``blocks`` is a list of
      ``(src_shard, raw, count)`` inbound message blocks (each ``raw`` a
      pickle of that source's ``[(arrival, payload), ...]`` in production
      order); deliver them, drain to ``bound``, then
    * send ``("out", out_blocks, top)`` — ``out_blocks`` packs this
      window's outbound messages as ``(dst_shard, raw, count,
      min_arrival)`` per destination, serialized once; ``top`` is the
      next local event time folding undelivered inbox arrivals (None
      when fully idle). The very first message after ``start()`` has the
      same shape, so messages sent during program setup are windowed
      like any others.

    Inbound messages merge into a worker-held sorted inbox drained via
    :meth:`Simulator.run_with_inbox` — no per-message scheduling — as
    ``(arrival, src, epoch, position, payload)``: ``position`` is the
    index within the block (each source's production order) and
    ``epoch`` counts delivery rounds, so for one source an earlier
    window's message sorts before a same-arrival later one. That makes
    the sort exactly the global ``(arrival, src_shard, seq)`` merge
    order, with a unique int prefix keeping payloads out of
    comparisons.

    ``("stop", until)`` answers with the final report. Any exception is
    reported as ``("error", text)`` so the parent can raise a clean
    :class:`ShardWorkerError` instead of hanging on a dead pipe.
    """
    try:
        root = make_rng(seed)
        rng = root
        for i in range(num_shards):
            spawned = spawn_rng(root, f"shard.{i}")
            if i == shard_id:
                rng = spawned
        ctx = ShardContext(shard_id, num_shards, lookahead, rng)
        program = factory(shard_id, num_shards, rng)
        ctx.bind(program)
        program.start(ctx)
        sim = ctx.sim
        handler = partial(ctx._handler, ctx)
        perf = _time.perf_counter
        dumps = pickle.dumps
        loads = pickle.loads
        busy = serialize = deserialize = 0.0
        inbox: list[tuple[float, int, int, int, Any]] = []
        inbox_index = 0
        epoch = 0

        def pack_outgoing() -> list[tuple[int, bytes, int, float]]:
            nonlocal serialize
            outgoing = ctx._outgoing
            out_blocks: list[tuple[int, bytes, int, float]] = []
            if outgoing:
                start = perf()
                by_dst: dict[int, list[tuple[float, Any]]] = {}
                for arrival, dst, payload in outgoing:
                    bucket = by_dst.get(dst)
                    if bucket is None:
                        bucket = by_dst[dst] = []
                    bucket.append((arrival, payload))
                outgoing.clear()
                for dst in sorted(by_dst):
                    messages = by_dst[dst]
                    out_blocks.append(
                        (
                            dst,
                            dumps(messages, protocol=pickle.HIGHEST_PROTOCOL),
                            len(messages),
                            min(m[0] for m in messages),
                        )
                    )
                serialize += perf() - start
            return out_blocks

        def next_top() -> float | None:
            top = sim._queue[0][0] if sim._queue else None
            if inbox_index < len(inbox):
                head = inbox[inbox_index][0]
                if top is None or head < top:
                    top = head
            return top

        conn.send(("out", pack_outgoing(), next_top()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "step":
                blocks, bound = command[1], command[2]
                if blocks:
                    start = perf()
                    if inbox_index:
                        del inbox[:inbox_index]
                        inbox_index = 0
                    epoch += 1
                    extend = inbox.extend
                    for src, raw, _count in blocks:
                        extend(
                            (arrival, src, epoch, position, payload)
                            for position, (arrival, payload) in enumerate(loads(raw))
                        )
                    inbox.sort()
                    deserialize += perf() - start
                start = perf()
                _, inbox_index = sim.run_with_inbox(inbox, inbox_index, handler, bound)
                busy += perf() - start
                conn.send(("out", pack_outgoing(), next_top()))
            elif op == "stop":
                final_until = command[1]
                if final_until is not None and sim.now < final_until:
                    sim.now = final_until
                conn.send(
                    (
                        "report",
                        sim.processed,
                        busy,
                        sim.now,
                        program.digest(),
                        serialize,
                        deserialize,
                    )
                )
                conn.close()
                return
    except EOFError:  # parent tore the pipe down; exit quietly
        return
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        return


class _WorkerPool:
    """Owns the shard worker processes and their pipes.

    Guarantees teardown: :meth:`close` (run from ``finally`` in
    :func:`_run_process`) closes every pipe — waking workers blocked in
    ``recv`` — then joins, escalating to terminate/kill for stragglers,
    so neither a mid-run exception in the parent nor a dead worker
    leaves orphaned forks behind. Pipe failures surface as
    :class:`ShardWorkerError` with the worker's exit code.
    """

    def __init__(self, factory, num_shards: int, lookahead: float, seed: int):
        import multiprocessing as mp

        context = mp.get_context("fork")
        self.pipes = []
        self.workers = []
        try:
            for shard_id in range(num_shards):
                parent_conn, child_conn = context.Pipe()
                worker = context.Process(
                    target=_process_worker,
                    args=(child_conn, factory, shard_id, num_shards, lookahead, seed),
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                self.pipes.append(parent_conn)
                self.workers.append(worker)
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, shard_id: int, message: tuple) -> None:
        try:
            self.pipes[shard_id].send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._fail(shard_id, exc)

    def recv(self, shard_id: int) -> tuple:
        try:
            reply = self.pipes[shard_id].recv()
        except (EOFError, OSError) as exc:
            self._fail(shard_id, exc)
        if reply[0] == "error":
            self._fail(shard_id, None, detail=reply[1])
        return reply

    def _fail(self, shard_id: int, exc, detail: str | None = None):
        worker = self.workers[shard_id]
        worker.join(timeout=1)
        exitcode = worker.exitcode
        self.close()
        reason = detail if detail is not None else f"pipe failed: {exc!r}"
        raise ShardWorkerError(
            f"shard {shard_id} worker failed ({reason}; exitcode={exitcode}); "
            "all workers terminated"
        ) from exc

    def close(self) -> None:
        for conn in self.pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for worker in self.workers:
            worker.join(timeout=2)
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self.workers:
            if worker.is_alive():  # pragma: no cover - terminate stragglers
                worker.join(timeout=5)
                if worker.is_alive():
                    worker.kill()
                    worker.join(timeout=5)


def _run_process(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int,
    until: float | None,
) -> ShardRunReport:
    report = ShardRunReport(num_shards=num_shards, backend="process", lookahead=lookahead)
    perf = _time.perf_counter
    wall_start = perf()
    total_messages = 0
    with _WorkerPool(factory, num_shards, lookahead, seed) as pool:
        tops = [_INF] * num_shards
        #: per-destination inbound blocks awaiting the next step, and the
        #: earliest arrival among them (folded into the window planning,
        #: since the destination's reported top predates these messages)
        pending_blocks: list[list[tuple[int, bytes, int]]] = [
            [] for _ in range(num_shards)
        ]
        pending_min = [_INF] * num_shards
        # The handshake has step-reply shape: it carries any messages the
        # programs sent during start(), windowed like all later traffic.
        for shard_id in range(num_shards):
            reply = pool.recv(shard_id)
            tops[shard_id] = _INF if reply[2] is None else reply[2]
            for dst, raw, count, min_arrival in reply[1]:
                pending_blocks[dst].append((shard_id, raw, count))
                if min_arrival < pending_min[dst]:
                    pending_min[dst] = min_arrival
                total_messages += count
        while True:
            effective = [
                tops[i] if tops[i] < pending_min[i] else pending_min[i]
                for i in range(num_shards)
            ]
            t_min = min(effective)
            if t_min == _INF:
                break
            if until is not None and t_min > until:
                break
            bounds = _plan_bounds(effective, lookahead, until)
            stepped = []
            for shard_id in range(num_shards):
                if effective[shard_id] == _INF:
                    continue
                pool.send(
                    shard_id, ("step", pending_blocks[shard_id], bounds[shard_id])
                )
                pending_blocks[shard_id] = []
                pending_min[shard_id] = _INF
                stepped.append(shard_id)
            # Collect in pinned shard order: global message sequence
            # numbers are implicitly assigned by this order, which is
            # what makes the per-destination (arrival, src, position)
            # sort reproduce the global merge order.
            for shard_id in stepped:
                reply = pool.recv(shard_id)
                tops[shard_id] = _INF if reply[2] is None else reply[2]
                for dst, raw, count, min_arrival in reply[1]:
                    pending_blocks[dst].append((shard_id, raw, count))
                    if min_arrival < pending_min[dst]:
                        pending_min[dst] = min_arrival
                    total_messages += count
            report.windows += 1
        for shard_id in range(num_shards):
            pool.send(shard_id, ("stop", until))
        for shard_id in range(num_shards):
            reply = pool.recv(shard_id)
            report.shards.append(
                ShardReport(
                    shard_id=shard_id,
                    processed=reply[1],
                    busy_seconds=reply[2],
                    final_time=reply[3],
                    digest=reply[4],
                    ipc_serialize_seconds=reply[5],
                    ipc_deserialize_seconds=reply[6],
                )
            )
    report.wall_seconds = perf() - wall_start
    report.cross_messages = total_messages
    return report


def run_sharded(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int = 0,
    backend: str = "round_robin",
    until: float | None = None,
) -> ShardRunReport:
    """Run one :class:`ShardProgram` per shard to completion.

    ``factory(shard_id, num_shards, rng)`` builds each shard's program;
    the RNG is spawned deterministically from ``seed`` with the same
    labels regardless of backend, so ``round_robin`` and ``process``
    runs of the same program are bit-identical. The ``process`` backend
    forks one persistent worker per shard (POSIX only) and exchanges
    packed message blocks over pipes — one round trip per window; use it
    on multi-core hosts, and ``round_robin`` everywhere else — the
    report's per-shard busy rates make the two comparable. A worker that
    dies or raises mid-run surfaces as :class:`ShardWorkerError` after
    every other worker has been torn down.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > 1 and lookahead <= 0:
        raise ValueError(
            f"lookahead must be positive with {num_shards} shards, got {lookahead}"
        )
    if backend == "round_robin":
        return _run_round_robin(factory, num_shards, lookahead, seed, until)
    if backend == "process":
        return _run_process(factory, num_shards, lookahead, seed, until)
    raise ValueError(f"unknown backend {backend!r} (round_robin or process)")
