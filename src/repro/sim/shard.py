"""Ring-sharded simulation kernel with conservative-lookahead windows.

The single-heap :class:`~repro.sim.engine.Simulator` processes one event
at a time; at hundreds of thousands of peers the heap becomes the whole
story. This module partitions the identifier ring into ``num_shards``
contiguous *region shards*, each running its own private event loop, and
synchronizes them with the classic conservative-lookahead protocol
(Chandy/Misra/Bryant in windowed form):

* **The invariant.** Every cross-shard interaction is a message with
  delay ``>= lookahead`` — the minimum latency the
  :class:`~repro.net.Transport` can draw for an inter-region hop
  (:meth:`~repro.net.Transport.min_hop_delay`). Intra-shard work may use
  any delay.
* **The window.** Let ``t_min`` be the earliest pending event across all
  shards. Every event with ``time < t_min + lookahead`` is safe to
  process: a cross-shard message produced by *any* event in that window
  is sent at ``>= t_min`` and therefore arrives at
  ``>= t_min + lookahead``, i.e. at or after the window's end — no shard
  can receive a message in its past.
* **Determinism.** Shard RNGs are spawned from one seed with stable
  labels; shards drain each window in pinned order ``0..S-1``; and the
  cross-shard outbox is merged in sorted ``(arrival, src_shard, seq)``
  order before delivery, so re-runs (and different backends) schedule
  identical FIFO-tied sequences. The same program run at 1 shard and at
  N shards sees identical per-shard event streams.

Two layers are exposed. :class:`ShardedSimulator` is the in-process
kernel: real :class:`Simulator` instances, arbitrary callbacks, usable
anywhere a ``Simulator`` is (each shard view quacks like one). On top,
:func:`run_sharded` executes a picklable :class:`ShardProgram` under a
chosen backend — ``round_robin`` (sequential, measures per-shard busy
time so aggregate capacity is still meaningful on one core) or
``process`` (one OS process per shard, true parallelism on multi-core
hosts; cross-shard messages are plain payloads over pipes).
"""

from __future__ import annotations

import math
import random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.ids import KEY_SPACE
from repro.common.rng import make_rng, spawn_rng
from repro.sim.engine import Event, EventGroup, Simulator

__all__ = [
    "ShardedSimulator",
    "ShardView",
    "ShardContext",
    "ShardProgram",
    "ShardReport",
    "ShardRunReport",
    "run_sharded",
    "shard_of_key",
]


def shard_of_key(key: int, num_shards: int) -> int:
    """Region shard owning ring position ``key`` (contiguous partition).

    The ring ``[0, KEY_SPACE)`` splits into ``num_shards`` equal arcs;
    a DHT node (or stored key) belongs to the arc containing its id.
    Contiguity matters: Chord-style routing and successor replication
    mostly touch ring-adjacent nodes, so region sharding keeps the bulk
    of traffic intra-shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return (key % KEY_SPACE) * num_shards // KEY_SPACE


@dataclass(frozen=True)
class _CrossShardEvent:
    """One in-flight cross-shard message (kernel layer: a callback)."""

    arrival: float
    src_shard: int
    seq: int
    dst_shard: int
    callback: Callable[[], None]

    @property
    def order(self) -> tuple[float, int, int]:
        return (self.arrival, self.src_shard, self.seq)


class ShardView:
    """One shard's clock, presented with the :class:`Simulator` surface.

    Subsystems built against ``Simulator`` (the hybrid engine, the PIER
    dataflow, obs collectors) can hold a view instead and never know the
    kernel is sharded. Scheduling is local to the shard; crossing shards
    goes through :meth:`send`, which enforces the lookahead invariant.
    """

    def __init__(self, parent: "ShardedSimulator", shard_id: int):
        self.parent = parent
        self.shard_id = shard_id
        self.sim = parent.shards[shard_id]
        self.rng = parent.rngs[shard_id]

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule_at(time, callback)

    def group(self) -> EventGroup:
        return self.sim.group()

    @property
    def pending(self) -> int:
        return self.sim.pending

    @property
    def processed(self) -> int:
        return self.sim.processed

    def send(self, dst_shard: int, delay: float, callback: Callable[[], None]) -> None:
        """Deliver ``callback`` on ``dst_shard`` after ``delay``."""
        self.parent.send(self.shard_id, dst_shard, delay, callback)

    def run(self, until: float | None = None) -> int:
        """Drain the *whole* kernel (windowed), not just this shard.

        Events on one shard may depend on cross-shard messages, so a
        lone-shard drain could deadlock; synchronous callers (e.g.
        ``DataflowExecutor.execute``) get the safe aggregate drain.
        """
        return self.parent.run(until=until)


class ShardedSimulator:
    """In-process sharded kernel: S event loops under one windowed drain.

    Drop-in for a :class:`Simulator` at the aggregate level (``now``,
    ``pending``, ``processed``, ``run``), with :meth:`shard` handing out
    per-shard views. With ``num_shards=1`` the window machinery
    short-circuits to a plain drain — the honest baseline the speedup
    and determinism checks compare against.
    """

    def __init__(
        self,
        num_shards: int,
        lookahead: float,
        seed: int | random.Random | None = 0,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > 1 and lookahead <= 0:
            raise ValueError(
                f"lookahead must be positive with {num_shards} shards, got {lookahead}"
            )
        self.num_shards = num_shards
        self.lookahead = lookahead
        root = make_rng(seed)
        self.rngs = [spawn_rng(root, f"shard.{i}") for i in range(num_shards)]
        self.shards = [Simulator() for _ in range(num_shards)]
        self._views = [ShardView(self, i) for i in range(num_shards)]
        self._outbox: list[_CrossShardEvent] = []
        self._next_msg_seq = 0
        #: wall-clock seconds each shard spent draining its windows
        self.busy_seconds = [0.0] * num_shards
        #: completed synchronization windows
        self.windows = 0

    # ------------------------------------------------------------------
    # Aggregate Simulator surface
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Frontier virtual time (the furthest-ahead shard clock)."""
        return max(shard.now for shard in self.shards)

    @property
    def pending(self) -> int:
        """Live events across all shards plus in-flight cross-shard messages."""
        return sum(shard.pending for shard in self.shards) + len(self._outbox)

    @property
    def processed(self) -> int:
        """Total events processed across all shards."""
        return sum(shard.processed for shard in self.shards)

    def shard(self, shard_id: int) -> ShardView:
        return self._views[shard_id]

    def shard_for_key(self, key: int) -> ShardView:
        return self._views[shard_of_key(key, self.num_shards)]

    # ------------------------------------------------------------------
    # Cross-shard messaging
    # ------------------------------------------------------------------

    def send(
        self, src_shard: int, dst_shard: int, delay: float, callback: Callable[[], None]
    ) -> None:
        """Schedule ``callback`` on ``dst_shard`` after ``delay``.

        Same-shard sends are ordinary local scheduling. Cross-shard sends
        must respect the lookahead invariant (``delay >= lookahead``) —
        it is what makes the synchronization windows safe — and are held
        in the outbox until the next window boundary, where they merge in
        pinned ``(arrival, src_shard, seq)`` order.
        """
        if src_shard == dst_shard:
            self.shards[src_shard].schedule(delay, callback)
            return
        if delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} violates lookahead {self.lookahead}"
            )
        arrival = self.shards[src_shard].now + delay
        self._outbox.append(
            _CrossShardEvent(arrival, src_shard, self._next_msg_seq, dst_shard, callback)
        )
        self._next_msg_seq += 1

    def _deliver_outbox(self) -> None:
        if not self._outbox:
            return
        self._outbox.sort(key=lambda m: m.order)
        for message in self._outbox:
            self.shards[message.dst_shard].schedule_at(message.arrival, message.callback)
        self._outbox.clear()

    def _next_event_time(self) -> float:
        """Earliest queued-event time across shards (inf when all idle).

        Peeks raw heap tops; a cancelled corpse at the top only makes the
        estimate *earlier* than the true next live event, which shrinks
        the window — conservative, never unsafe.
        """
        t_min = math.inf
        for shard in self.shards:
            if shard._queue:
                top = shard._queue[0][0]
                if top < t_min:
                    t_min = top
        return t_min

    # ------------------------------------------------------------------
    # Windowed drain
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> int:
        """Drain all shards in conservative-lookahead windows.

        Returns events processed by this call. Stops when every shard is
        idle and no messages are in flight, or when virtual time would
        pass ``until`` (shard clocks then rest exactly at ``until``,
        matching :meth:`Simulator.run` semantics).
        """
        perf = _time.perf_counter
        processed = 0
        if self.num_shards == 1:
            # Plain drain: no windows, no barrier overhead — the honest
            # single-shard baseline.
            self._deliver_outbox()
            shard = self.shards[0]
            start = perf()
            processed = shard.run(until=until)
            self.busy_seconds[0] += perf() - start
            return processed
        while True:
            self._deliver_outbox()
            t_min = self._next_event_time()
            if t_min == math.inf:
                break
            if until is not None and t_min > until:
                for shard in self.shards:
                    if shard.now < until:
                        shard.now = until
                break
            window_end = t_min + self.lookahead
            # Simulator.run(until=) is inclusive; the window must be
            # exclusive of its end (a message can arrive exactly there).
            bound = math.nextafter(window_end, -math.inf)
            if until is not None and until < bound:
                bound = until
            for shard_id in range(self.num_shards):  # pinned order
                shard = self.shards[shard_id]
                start = perf()
                processed += shard.run(until=bound)
                self.busy_seconds[shard_id] += perf() - start
            self.windows += 1
        return processed


# ----------------------------------------------------------------------
# Portable shard programs (round-robin and process backends)
# ----------------------------------------------------------------------


class ShardContext:
    """What a :class:`ShardProgram` sees: its clock, RNG, and mailbox.

    The context is backend-neutral — under the process backend it lives
    inside the worker process, so programs never hold references that
    would have to cross a pipe. Cross-shard communication is payload
    data only, delivered to the destination program's ``on_message``.
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        lookahead: float,
        rng: random.Random,
    ):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lookahead = lookahead
        self.rng = rng
        self.sim = Simulator()
        #: payload messages produced this window, drained by the backend
        self._outgoing: list[tuple[float, int, Any]] = []
        self._program: "ShardProgram | None" = None

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def send(self, dst_shard: int, delay: float, payload: Any) -> None:
        """Send ``payload`` to ``dst_shard``; local sends loop back."""
        if dst_shard == self.shard_id:
            self.sim.schedule(delay, lambda: self._program.on_message(self, payload))
            return
        if delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} violates lookahead {self.lookahead}"
            )
        self._outgoing.append((self.sim.now + delay, dst_shard, payload))


class ShardProgram:
    """A per-shard actor: seed events in ``start``, react in ``on_message``.

    Subclasses must be constructible inside a worker process (the
    ``factory`` passed to :func:`run_sharded` builds one per shard) and
    must confine all cross-shard effects to ``ctx.send`` payloads.
    ``digest()`` returns a picklable summary merged into the run report
    — determinism checks compare digests across shard counts/backends.
    """

    def start(self, ctx: ShardContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_message(self, ctx: ShardContext, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def digest(self) -> Any:
        return None


@dataclass
class ShardReport:
    """One shard's outcome: events drained, wall-clock busy time, digest."""

    shard_id: int
    processed: int
    busy_seconds: float
    final_time: float
    digest: Any = None

    @property
    def events_per_second(self) -> float:
        """Events per second of *busy* time (this shard's drain rate)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.processed / self.busy_seconds


@dataclass
class ShardRunReport:
    """Aggregate outcome of :func:`run_sharded`."""

    num_shards: int
    backend: str
    lookahead: float
    shards: list[ShardReport] = field(default_factory=list)
    windows: int = 0
    wall_seconds: float = 0.0
    cross_messages: int = 0

    @property
    def processed(self) -> int:
        return sum(s.processed for s in self.shards)

    @property
    def final_time(self) -> float:
        return max((s.final_time for s in self.shards), default=0.0)

    @property
    def aggregate_events_per_second(self) -> float:
        """Sum of per-shard busy-time drain rates.

        This is the kernel's *capacity*: what the shard set sustains when
        every shard drains concurrently. Under the sequential round-robin
        backend shards time-share one core, so wall-clock throughput is
        ``processed / wall_seconds`` instead — both are reported and the
        benchmark records both.
        """
        return sum(s.events_per_second for s in self.shards)

    @property
    def wall_events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.processed / self.wall_seconds

    def digests(self) -> list[Any]:
        return [s.digest for s in self.shards]


def _window_bound(window_end: float) -> float:
    return math.nextafter(window_end, -math.inf)


def _run_round_robin(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int,
    until: float | None,
) -> ShardRunReport:
    root = make_rng(seed)
    contexts: list[ShardContext] = []
    programs: list[ShardProgram] = []
    for shard_id in range(num_shards):
        rng = spawn_rng(root, f"shard.{shard_id}")
        ctx = ShardContext(shard_id, num_shards, lookahead, rng)
        program = factory(shard_id, num_shards, rng)
        ctx._program = program
        contexts.append(ctx)
        programs.append(program)
    report = ShardRunReport(num_shards=num_shards, backend="round_robin", lookahead=lookahead)
    perf = _time.perf_counter
    wall_start = perf()
    busy = [0.0] * num_shards
    for ctx, program in zip(contexts, programs):
        program.start(ctx)
    pending_messages: list[tuple[float, int, int, int, Any]] = []
    msg_seq = 0
    while True:
        # merge cross-shard messages in pinned order
        pending_messages.sort(key=lambda m: (m[0], m[1], m[2]))
        for arrival, _src, _seq, dst, payload in pending_messages:
            ctx = contexts[dst]
            ctx.sim.schedule_at(
                arrival,
                lambda c=ctx, p=payload: c._program.on_message(c, p),
            )
        pending_messages.clear()
        t_min = min(
            (ctx.sim._queue[0][0] for ctx in contexts if ctx.sim._queue),
            default=math.inf,
        )
        if t_min == math.inf:
            break
        if until is not None and t_min > until:
            for ctx in contexts:
                if ctx.sim.now < until:
                    ctx.sim.now = until
            break
        if num_shards == 1:
            bound = until
        else:
            bound = _window_bound(t_min + lookahead)
            if until is not None and until < bound:
                bound = until
        for shard_id in range(num_shards):
            ctx = contexts[shard_id]
            start = perf()
            ctx.sim.run(until=bound)
            busy[shard_id] += perf() - start
            for arrival, dst, payload in ctx._outgoing:
                pending_messages.append((arrival, shard_id, msg_seq, dst, payload))
                msg_seq += 1
            ctx._outgoing.clear()
        report.windows += 1
        if num_shards == 1 and not pending_messages:
            break
    report.wall_seconds = perf() - wall_start
    report.cross_messages = msg_seq
    for shard_id, (ctx, program) in enumerate(zip(contexts, programs)):
        report.shards.append(
            ShardReport(
                shard_id=shard_id,
                processed=ctx.sim.processed,
                busy_seconds=busy[shard_id],
                final_time=ctx.sim.now,
                digest=program.digest(),
            )
        )
    return report


def _process_worker(conn, factory, shard_id, num_shards, lookahead, seed) -> None:
    """One shard's event loop inside its own OS process."""
    root = make_rng(seed)
    rng = root
    for i in range(num_shards):
        spawned = spawn_rng(root, f"shard.{i}")
        if i == shard_id:
            rng = spawned
    ctx = ShardContext(shard_id, num_shards, lookahead, rng)
    program = factory(shard_id, num_shards, rng)
    ctx._program = program
    program.start(ctx)
    perf = _time.perf_counter
    busy = 0.0
    while True:
        command = conn.recv()
        op = command[0]
        if op == "deliver":
            for arrival, payload in command[1]:
                ctx.sim.schedule_at(
                    arrival, lambda p=payload: ctx._program.on_message(ctx, p)
                )
            top = ctx.sim._queue[0][0] if ctx.sim._queue else None
            conn.send(("next", top))
        elif op == "run":
            bound = command[1]
            start = perf()
            ctx.sim.run(until=bound)
            busy += perf() - start
            outgoing = list(ctx._outgoing)
            ctx._outgoing.clear()
            conn.send(("out", outgoing))
        elif op == "stop":
            final_until = command[1]
            if final_until is not None and ctx.sim.now < final_until:
                ctx.sim.now = final_until
            conn.send(
                ("report", ctx.sim.processed, busy, ctx.sim.now, program.digest())
            )
            conn.close()
            return


def _run_process(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int,
    until: float | None,
) -> ShardRunReport:
    import multiprocessing as mp

    context = mp.get_context("fork")
    report = ShardRunReport(num_shards=num_shards, backend="process", lookahead=lookahead)
    perf = _time.perf_counter
    wall_start = perf()
    pipes = []
    workers = []
    for shard_id in range(num_shards):
        parent_conn, child_conn = context.Pipe()
        worker = context.Process(
            target=_process_worker,
            args=(child_conn, factory, shard_id, num_shards, lookahead, seed),
            daemon=True,
        )
        worker.start()
        child_conn.close()
        pipes.append(parent_conn)
        workers.append(worker)
    pending_messages: list[tuple[float, int, int, int, Any]] = []
    msg_seq = 0
    try:
        while True:
            pending_messages.sort(key=lambda m: (m[0], m[1], m[2]))
            inboxes: list[list[tuple[float, Any]]] = [[] for _ in range(num_shards)]
            for arrival, _src, _seq, dst, payload in pending_messages:
                inboxes[dst].append((arrival, payload))
            pending_messages.clear()
            for conn, inbox in zip(pipes, inboxes):
                conn.send(("deliver", inbox))
            tops = []
            for conn in pipes:
                reply = conn.recv()
                tops.append(math.inf if reply[1] is None else reply[1])
            t_min = min(tops)
            if t_min == math.inf:
                break
            if until is not None and t_min > until:
                break
            bound = _window_bound(t_min + lookahead)
            if until is not None and until < bound:
                bound = until
            for conn in pipes:
                conn.send(("run", bound))
            # collect in shard order — determinism of msg_seq assignment
            for shard_id, conn in enumerate(pipes):
                reply = conn.recv()
                for arrival, dst, payload in reply[1]:
                    pending_messages.append((arrival, shard_id, msg_seq, dst, payload))
                    msg_seq += 1
            report.windows += 1
        for conn in pipes:
            conn.send(("stop", until))
        for shard_id, conn in enumerate(pipes):
            reply = conn.recv()
            report.shards.append(
                ShardReport(
                    shard_id=shard_id,
                    processed=reply[1],
                    busy_seconds=reply[2],
                    final_time=reply[3],
                    digest=reply[4],
                )
            )
    finally:
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - hang safety net
                worker.terminate()
    report.wall_seconds = perf() - wall_start
    report.cross_messages = msg_seq
    return report


def run_sharded(
    factory: Callable[[int, int, random.Random], ShardProgram],
    num_shards: int,
    lookahead: float,
    seed: int = 0,
    backend: str = "round_robin",
    until: float | None = None,
) -> ShardRunReport:
    """Run one :class:`ShardProgram` per shard to completion.

    ``factory(shard_id, num_shards, rng)`` builds each shard's program;
    the RNG is spawned deterministically from ``seed`` with the same
    labels regardless of backend, so ``round_robin`` and ``process``
    runs of the same program are bit-identical. The ``process`` backend
    forks one worker per shard (POSIX only) and exchanges payloads over
    pipes; use it on multi-core hosts, and ``round_robin`` everywhere
    else — the report's per-shard busy rates make the two comparable.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > 1 and lookahead <= 0:
        raise ValueError(
            f"lookahead must be positive with {num_shards} shards, got {lookahead}"
        )
    if backend == "round_robin":
        return _run_round_robin(factory, num_shards, lookahead, seed, until)
    if backend == "process":
        return _run_process(factory, num_shards, lookahead, seed, until)
    raise ValueError(f"unknown backend {backend!r} (round_robin or process)")
