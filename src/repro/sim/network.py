"""Simulated message-passing network.

Binds node handlers to addresses and delivers :class:`Message` objects
through the :class:`~repro.sim.engine.Simulator` with delays drawn from a
:class:`~repro.sim.latency.LatencyModel`. Every delivery is counted so
experiments can report message and byte overheads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import NodeNotFoundError
from repro.common.units import BandwidthMeter
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel, UniformLatencyModel

Handler = Callable[["Message"], None]


@dataclass
class Message:
    """One network message: source/destination addresses plus a payload."""

    source: int
    destination: int
    kind: str
    payload: Any = None
    size_bytes: int = 0
    sent_at: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


class SimNetwork:
    """Delivers messages between registered nodes with simulated latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        transport=None,
    ):
        self.sim = sim
        self.latency = latency or UniformLatencyModel()
        self.rng = rng or random.Random(0)
        self.meter = BandwidthMeter()
        #: optional repro.net transport; when set, charges route through it
        #: (and land on its meter) instead of this network's own meter
        self.transport = transport
        self._handlers: dict[int, Handler] = {}
        self._partitioned: set[int] = set()
        self.dropped = 0

    def register(self, address: int, handler: Handler) -> None:
        """Attach ``handler`` to ``address``; replaces any previous handler."""
        self._handlers[address] = handler

    def unregister(self, address: int) -> None:
        self._handlers.pop(address, None)

    def is_registered(self, address: int) -> bool:
        return address in self._handlers

    def partition(self, address: int) -> None:
        """Simulate a node becoming unreachable without deregistering it."""
        self._partitioned.add(address)

    def heal(self, address: int) -> None:
        self._partitioned.discard(address)

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery after a sampled latency.

        Messages to unknown or partitioned destinations are counted in
        ``dropped`` and silently discarded — exactly what a UDP-based DHT
        overlay sees.
        """
        message.sent_at = self.sim.now
        if self.transport is not None:
            self.transport.charge(message.kind, 1, message.size_bytes)
        else:
            self.meter.charge(message.kind, 1, message.size_bytes)
        if (
            message.destination not in self._handlers
            or message.destination in self._partitioned
            or message.source in self._partitioned
        ):
            self.dropped += 1
            return
        delay = self.latency.delay(message.source, message.destination, self.rng)
        self.sim.schedule(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.destination)
        if handler is None or message.destination in self._partitioned:
            self.dropped += 1
            return
        handler(message)

    def require_handler(self, address: int) -> Handler:
        handler = self._handlers.get(address)
        if handler is None:
            raise NodeNotFoundError(f"no node registered at address {address}")
        return handler
