"""Wide-area latency models.

The paper's deployment spans PlanetLab nodes on two continents. Observed
latencies therefore mix intra-continent RTTs (tens of ms) with
trans-Atlantic RTTs (~100-200 ms), plus per-hop processing time at loaded
Gnutella ultrapeers (which dominates: the paper reports 73 s average first
result for single-result queries, driven by deep flooding and peer
processing/queueing rather than raw wire speed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class LatencyModel:
    """Interface: one-way latency between two nodes, in seconds."""

    def delay(self, source: int, destination: int, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass
class UniformLatencyModel(LatencyModel):
    """Latency drawn uniformly from [low, high] seconds. Simple and fast."""

    low: float = 0.02
    high: float = 0.12

    def delay(self, source: int, destination: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class TwoContinentLatencyModel(LatencyModel):
    """PlanetLab-style two-continent model.

    Nodes are assigned a continent by parity of a stable hash of their id.
    Intra-continent one-way delay ~ U[0.01, 0.05] s; inter-continent
    ~ U[0.05, 0.12] s. A lognormal-ish processing jitter models overloaded
    ultrapeers forwarding floods.
    """

    def __init__(
        self,
        intra_low: float = 0.01,
        intra_high: float = 0.05,
        inter_low: float = 0.05,
        inter_high: float = 0.12,
        processing_mean: float = 0.4,
    ):
        self.intra_low = intra_low
        self.intra_high = intra_high
        self.inter_low = inter_low
        self.inter_high = inter_high
        self.processing_mean = processing_mean

    @staticmethod
    def continent_of(node: int) -> int:
        # Stable 2-way split; good enough to mix intra/inter links.
        return (node * 2654435761) % 2

    def delay(self, source: int, destination: int, rng: random.Random) -> float:
        same = self.continent_of(source) == self.continent_of(destination)
        if same:
            wire = rng.uniform(self.intra_low, self.intra_high)
        else:
            wire = rng.uniform(self.inter_low, self.inter_high)
        processing = rng.expovariate(1.0 / self.processing_mean) if self.processing_mean else 0.0
        return wire + processing
