"""TTL-scoped query flooding.

The core Gnutella query mechanism: an ultrapeer forwards a query to all
its ultrapeer neighbours, who forward recursively until the TTL expires.
Nodes suppress duplicate copies of a query they have already seen (they
do not re-forward), but the duplicate *messages* are still sent and paid
for — this redundancy is exactly the diminishing-returns effect Figure 8
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gnutella.index import UltrapeerIndex
from repro.gnutella.topology import Topology
from repro.workload.library import SharedFile


@dataclass(frozen=True)
class Match:
    """One query hit: the file plus the hop depth where it was found."""

    file: SharedFile
    hop: int


@dataclass
class FloodResult:
    """Outcome of flooding one query with a fixed TTL."""

    origin: int
    ttl: int
    matches: list[Match] = field(default_factory=list)
    #: ultrapeers that received the query (including the origin)
    visited: set[int] = field(default_factory=set)
    #: total query messages sent between ultrapeers (duplicates included)
    messages: int = 0
    #: cumulative ultrapeers visited after each hop (index 0 = hop 0)
    visited_by_hop: list[int] = field(default_factory=list)
    #: cumulative messages sent after each hop
    messages_by_hop: list[int] = field(default_factory=list)

    @property
    def num_results(self) -> int:
        return len(self.matches)

    def first_match_hop(self) -> int | None:
        """Shallowest hop at which any match was found, or None."""
        if not self.matches:
            return None
        return min(match.hop for match in self.matches)

    def results(self) -> list[SharedFile]:
        return [match.file for match in self.matches]


def flood(
    topology: Topology,
    indexes: dict[int, UltrapeerIndex],
    origin: int,
    terms: list[str],
    ttl: int,
) -> FloodResult:
    """Flood ``terms`` from ultrapeer ``origin`` for ``ttl`` hops.

    The origin processes the query locally at hop 0. At each subsequent
    hop, every ultrapeer that newly received the query forwards it to all
    neighbours except the one it came from; receivers that already saw the
    query discard it (but the message was still sent and is counted).
    """
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    result = FloodResult(origin=origin, ttl=ttl)
    result.visited.add(origin)
    _record_matches(result, indexes, origin, terms, hop=0)
    result.visited_by_hop.append(1)
    result.messages_by_hop.append(0)

    # frontier holds (node, parent) pairs: nodes that received the query
    # for the first time last hop and will forward this hop.
    frontier: list[tuple[int, int | None]] = [(origin, None)]
    for hop in range(1, ttl + 1):
        next_frontier: list[tuple[int, int | None]] = []
        for node, parent in frontier:
            for neighbor in topology.neighbors[node]:
                if neighbor == parent:
                    continue
                result.messages += 1
                if neighbor in result.visited:
                    continue  # duplicate: dropped by receiver
                result.visited.add(neighbor)
                _record_matches(result, indexes, neighbor, terms, hop)
                next_frontier.append((neighbor, node))
        frontier = next_frontier
        result.visited_by_hop.append(len(result.visited))
        result.messages_by_hop.append(result.messages)
        if not frontier:
            break
    return result


def _record_matches(
    result: FloodResult,
    indexes: dict[int, UltrapeerIndex],
    ultrapeer: int,
    terms: list[str],
    hop: int,
) -> None:
    index = indexes.get(ultrapeer)
    if index is None:
        return
    for file in index.match(terms):
        result.matches.append(Match(file=file, hop=hop))
