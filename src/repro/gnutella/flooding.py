"""TTL-scoped query flooding.

The core Gnutella query mechanism: an ultrapeer forwards a query to all
its ultrapeer neighbours, who forward recursively until the TTL expires.
Nodes suppress duplicate copies of a query they have already seen (they
do not re-forward), but the duplicate *messages* are still sent and paid
for — this redundancy is exactly the diminishing-returns effect Figure 8
quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gnutella.index import UltrapeerIndex
from repro.gnutella.topology import Topology
from repro.net import FloodMessage, Transport
from repro.workload.library import SharedFile

#: transport category for query edges (one FloodMessage per forwarded copy)
FLOOD_CATEGORY = "gnutella.query"

#: recent-frequency above which a query counts as popular enough to
#: flood shallower (roughly: one in fifty recent queries)
DEFAULT_POPULAR_FREQUENCY = 0.02


@dataclass(frozen=True)
class Match:
    """One query hit: the file plus the hop depth where it was found."""

    file: SharedFile
    hop: int


@dataclass
class FloodResult:
    """Outcome of flooding one query with a fixed TTL."""

    origin: int
    ttl: int
    matches: list[Match] = field(default_factory=list)
    #: ultrapeers that received the query (including the origin)
    visited: set[int] = field(default_factory=set)
    #: total query messages sent between ultrapeers (duplicates included)
    messages: int = 0
    #: cumulative ultrapeers visited after each hop (index 0 = hop 0)
    visited_by_hop: list[int] = field(default_factory=list)
    #: cumulative messages sent after each hop
    messages_by_hop: list[int] = field(default_factory=list)

    @property
    def num_results(self) -> int:
        return len(self.matches)

    def first_match_hop(self) -> int | None:
        """Shallowest hop at which any match was found, or None."""
        if not self.matches:
            return None
        return min(match.hop for match in self.matches)

    def results(self) -> list[SharedFile]:
        return [match.file for match in self.matches]


def flood(
    topology: Topology,
    indexes: dict[int, UltrapeerIndex],
    origin: int,
    terms: list[str],
    ttl: int,
    transport: Transport | None = None,
    payload_bytes: int = 0,
) -> FloodResult:
    """Flood ``terms`` from ultrapeer ``origin`` for ``ttl`` hops.

    The origin processes the query locally at hop 0. At each subsequent
    hop, every ultrapeer that newly received the query forwards it to all
    neighbours except the one it came from; receivers that already saw the
    query discard it (but the message was still sent and is counted).

    When a ``transport`` is supplied, every forwarded edge — duplicates
    included, since the sender pays for them regardless — is delivered as
    a :class:`~repro.net.FloodMessage` of ``payload_bytes``, so flood
    overhead lands on the same bandwidth meter as DHT and PIER traffic.
    """
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    result = FloodResult(origin=origin, ttl=ttl)
    result.visited.add(origin)
    _record_matches(result, indexes, origin, terms, hop=0)
    result.visited_by_hop.append(1)
    result.messages_by_hop.append(0)

    # frontier holds (node, parent) pairs: nodes that received the query
    # for the first time last hop and will forward this hop.
    frontier: list[tuple[int, int | None]] = [(origin, None)]
    for hop in range(1, ttl + 1):
        next_frontier: list[tuple[int, int | None]] = []
        for node, parent in frontier:
            for neighbor in topology.neighbors[node]:
                if neighbor == parent:
                    continue
                result.messages += 1
                if transport is not None:
                    transport.deliver(
                        FloodMessage(
                            source=node,
                            target=neighbor,
                            payload_bytes=payload_bytes,
                            category=FLOOD_CATEGORY,
                            hop=hop,
                        )
                    )
                if neighbor in result.visited:
                    continue  # duplicate: dropped by receiver
                result.visited.add(neighbor)
                _record_matches(result, indexes, neighbor, terms, hop)
                next_frontier.append((neighbor, node))
        frontier = next_frontier
        result.visited_by_hop.append(len(result.visited))
        result.messages_by_hop.append(result.messages)
        if not frontier:
            break
    return result


def popularity_stop_ttl(
    frequency: float,
    max_ttl: int,
    popular_frequency: float = DEFAULT_POPULAR_FREQUENCY,
    min_ttl: int = 1,
) -> int:
    """Partial-flooding TTL for a query with recent ``frequency``.

    The paper's hybrid premise: popular content is so widely replicated
    that shallow floods already find it, so deep floods on popular queries
    pay pure duplicate-message overhead (Figure 8's diminishing returns).
    Queries at or below ``popular_frequency`` keep the full ``max_ttl``;
    above it the TTL shrinks by one hop per doubling of frequency, never
    below ``min_ttl``.
    """
    if max_ttl < 0:
        raise ValueError(f"max_ttl must be >= 0, got {max_ttl}")
    if not 0.0 < popular_frequency <= 1.0:
        raise ValueError(f"popular_frequency must be in (0,1], got {popular_frequency}")
    min_ttl = max(0, min(min_ttl, max_ttl))
    if frequency <= popular_frequency or max_ttl <= min_ttl:
        return max_ttl
    shrink = int(math.log2(frequency / popular_frequency)) + 1
    return max(min_ttl, max_ttl - shrink)


def adaptive_flood(
    topology: Topology,
    indexes: dict[int, UltrapeerIndex],
    origin: int,
    terms: list[str],
    estimator,
    max_ttl: int,
    popular_frequency: float = DEFAULT_POPULAR_FREQUENCY,
    min_ttl: int = 1,
    key: tuple | None = None,
    transport: Transport | None = None,
    payload_bytes: int = 0,
) -> FloodResult:
    """Flood with a TTL scaled down by the query's observed popularity.

    ``estimator`` is a :class:`~repro.cache.popularity.PopularityEstimator`
    (anything with ``observe``/``frequency`` works). The query is observed
    *after* its TTL is chosen, so the first sighting floods at full depth
    and repeats get progressively cheaper. The default key is
    :func:`~repro.cache.popularity.query_key` of the terms — the same
    canonical form the result cache uses — so one estimator can be shared
    between flooding and caching without splitting a query's popularity;
    queries with no indexable keyword fall back to the sorted lowercase
    term tuple so they are still tracked.
    """
    if key is None:
        from repro.cache.popularity import query_key

        key = query_key(terms) or tuple(sorted(term.lower() for term in terms))
    ttl = popularity_stop_ttl(
        estimator.frequency(key), max_ttl, popular_frequency, min_ttl
    )
    estimator.observe(key)
    return flood(
        topology,
        indexes,
        origin,
        terms,
        ttl,
        transport=transport,
        payload_bytes=payload_bytes,
    )


def _record_matches(
    result: FloodResult,
    indexes: dict[int, UltrapeerIndex],
    ultrapeer: int,
    terms: list[str],
    hop: int,
) -> None:
    index = indexes.get(ultrapeer)
    if index is None:
        return
    for file in index.match(terms):
        result.matches.append(Match(file=file, hop=hop))
