"""Query Routing Protocol (QRP): leaf keyword Bloom filters.

Footnote 2 of the paper: newer LimeWire leaf nodes publish Bloom filters
of the keywords in their files to their ultrapeers, instead of the full
file lists. The ultrapeer then forwards a query to a leaf only when every
query term hits the leaf's filter. This cuts publish bandwidth and leaf
probes, but (a) false positives cause wasted probes and (b) substring and
wildcard matching are lost — the same trade-off the paper notes for
DHT-based search.

``QrpUltrapeerIndex`` is a drop-in alternative to
:class:`~repro.gnutella.index.UltrapeerIndex` that routes through per-leaf
filters; its ``match`` results equal the exact index's results for
whole-token queries, while ``leaf_probes``/``avoided_probes`` expose the
routing-work accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bloom import BloomFilter
from repro.piersearch.tokenizer import extract_keywords, tokenize
from repro.workload.library import SharedFile


@dataclass
class LeafEntry:
    """One leaf as seen by its ultrapeer: its files plus its QRP filter."""

    leaf_id: int
    files: list[SharedFile] = field(default_factory=list)
    bloom: BloomFilter | None = None

    def rebuild_bloom(self, false_positive_rate: float = 0.01) -> int:
        """(Re)build the keyword filter; returns its wire size in bytes."""
        keywords = {
            keyword
            for file in self.files
            for keyword in extract_keywords(file.filename)
        }
        self.bloom = BloomFilter.with_capacity(
            max(1, len(keywords)), false_positive_rate
        )
        self.bloom.update(keywords)
        return self.bloom.size_bytes


class QrpUltrapeerIndex:
    """Ultrapeer-side QRP routing table over its leaves."""

    def __init__(self, false_positive_rate: float = 0.01):
        self.false_positive_rate = false_positive_rate
        self._leaves: dict[int, LeafEntry] = {}
        #: own (ultrapeer-local) files are matched directly, as in LimeWire
        self._local_files: list[SharedFile] = []
        self.publish_bytes = 0
        self.leaf_probes = 0
        self.avoided_probes = 0
        self.wasted_probes = 0

    def add_local_files(self, files: list[SharedFile]) -> None:
        self._local_files.extend(files)

    def attach_leaf(self, leaf_id: int, files: list[SharedFile]) -> None:
        """A leaf connects and publishes its QRP filter (not its files)."""
        entry = LeafEntry(leaf_id=leaf_id, files=list(files))
        self.publish_bytes += entry.rebuild_bloom(self.false_positive_rate)
        self._leaves[leaf_id] = entry

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    def match(self, terms: list[str]) -> list[SharedFile]:
        """Match a query: local files directly, leaves via their filters.

        QRP matches whole keywords only (tokens are hashed into the
        filter), so the query terms are tokenized the same way. A leaf is
        probed only when all terms pass its filter; probes that find
        nothing (false positives) are counted in ``wasted_probes``.
        """
        keywords: list[str] = []
        for term in terms:
            keywords.extend(tokenize(term))
        if not keywords:
            return []
        matches = [
            file
            for file in self._local_files
            if _keywords_match(file.filename, keywords)
        ]
        for entry in self._leaves.values():
            assert entry.bloom is not None
            if all(keyword in entry.bloom for keyword in keywords):
                self.leaf_probes += 1
                found = [
                    file
                    for file in entry.files
                    if _keywords_match(file.filename, keywords)
                ]
                if not found:
                    self.wasted_probes += 1
                matches.extend(found)
            else:
                self.avoided_probes += 1
        return matches


def _keywords_match(filename: str, keywords: list[str]) -> bool:
    tokens = set(tokenize(filename))
    return all(keyword in tokens for keyword in keywords)
