"""Per-ultrapeer content index.

An ultrapeer answers queries on behalf of its leaves: each leaf publishes
its file list to the ultrapeer on connect (Gnutella 0.6), so query
processing never touches leaves. The index keeps a token -> files map for
candidate generation and verifies candidates with Gnutella's substring
matching semantics, so lookups are fast without changing match results.
"""

from __future__ import annotations

from repro.piersearch.tokenizer import tokenize
from repro.workload.library import SharedFile


class UltrapeerIndex:
    """Files searchable at one ultrapeer (its own plus its leaves')."""

    def __init__(self) -> None:
        self._files: list[SharedFile] = []
        self._token_index: dict[str, list[int]] = {}

    def add_file(self, file: SharedFile) -> None:
        position = len(self._files)
        self._files.append(file)
        for token in set(tokenize(file.filename)):
            self._token_index.setdefault(token, []).append(position)

    def add_files(self, files: list[SharedFile]) -> None:
        for file in files:
            self.add_file(file)

    def __len__(self) -> int:
        return len(self._files)

    @property
    def files(self) -> list[SharedFile]:
        return list(self._files)

    def match(self, terms: list[str]) -> list[SharedFile]:
        """Files whose names contain every query term (substring match).

        Candidate generation uses the token index on the rarest term's
        tokens; verification applies true substring semantics, so the
        result is identical to scanning every file.
        """
        if not terms:
            return []
        lowered = [term.lower() for term in terms]
        candidates = self._candidates(lowered)
        matched: list[SharedFile] = []
        for position in candidates:
            name = self._files[position].filename.lower()
            if all(term in name for term in lowered):
                matched.append(self._files[position])
        return matched

    def _candidates(self, lowered_terms: list[str]) -> range | list[int]:
        """Narrow the candidate set using the token index when possible.

        A term that is itself a token can only match files containing that
        token... unless it appears as a substring of a longer token, so we
        only use the index when the term matches at least one indexed token
        by substring; we then take the union of those tokens' posting
        lists. If a term matches too many tokens, fall back to a full scan.
        """
        best: list[int] | None = None
        for term in lowered_terms:
            token_lists = [
                positions
                for token, positions in self._token_index.items()
                if term in token
            ]
            if not token_lists:
                return []  # no token contains this term anywhere
            if len(token_lists) > 50:
                continue  # too unselective; try another term
            union: set[int] = set()
            for positions in token_lists:
                union.update(positions)
            if best is None or len(union) < len(best):
                best = sorted(union)
        if best is None:
            return range(len(self._files))
        return best
