"""Gnutella 0.6 network simulator.

Reproduces the unstructured network the paper measures in Section 4:
ultrapeer/leaf topology with the two LimeWire degree profiles
(:mod:`repro.gnutella.topology`), TTL-scoped flooding with duplicate
suppression (:mod:`repro.gnutella.flooding`), dynamic querying /
iterative deepening (:mod:`repro.gnutella.dynamic`), a first-result
latency model calibrated to the paper's measurements
(:mod:`repro.gnutella.latency`), the topology crawler of Section 4.1
(:mod:`repro.gnutella.crawler`), and the union-of-k measurement harness
of Section 4.2 (:mod:`repro.gnutella.measurement`).
"""

from repro.gnutella.topology import Topology, TopologyConfig, build_topology
from repro.gnutella.index import UltrapeerIndex
from repro.gnutella.flooding import FloodResult, Match, flood
from repro.gnutella.dynamic import DynamicQueryResult, dynamic_query
from repro.gnutella.latency import GnutellaLatencyModel
from repro.gnutella.network import GnutellaNetwork
from repro.gnutella.crawler import CrawlResult, crawl, flood_overhead_curve
from repro.gnutella.measurement import MeasurementCampaign, replay_campaign
from repro.gnutella.qrp import QrpUltrapeerIndex

__all__ = [
    "Topology",
    "TopologyConfig",
    "build_topology",
    "UltrapeerIndex",
    "FloodResult",
    "Match",
    "flood",
    "DynamicQueryResult",
    "dynamic_query",
    "GnutellaLatencyModel",
    "GnutellaNetwork",
    "CrawlResult",
    "crawl",
    "flood_overhead_curve",
    "MeasurementCampaign",
    "replay_campaign",
    "QrpUltrapeerIndex",
]
