"""First-result latency model.

Section 4.2 measures that queries returning a single result wait 73 s on
average for the first result, ~50 s for queries with <= 10 results, while
queries with > 150 results get their first result in ~6 s. The latency is
dominated not by wire speed but by (a) per-hop forwarding/queueing delay
at loaded ultrapeers and (b) dynamic querying's round structure: rare
items are only reached in late, deep rounds.

The model below computes first-result latency from the round/hop where a
result was first found:

    round r start  = initial_overhead + sum_{i<r} (2*ttl_i*hop_time + round_pause)
    arrival        = round start + 2 * hop * hop_time

Defaults are calibrated so the curve reproduces the paper's endpoints
(~73 s at 1 result, ~6 s at > 150 results) on the default topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gnutella.dynamic import DynamicQueryResult


@dataclass(frozen=True)
class GnutellaLatencyModel:
    """Calibrated latency constants (seconds)."""

    #: one-way per-hop forwarding delay at an ultrapeer
    hop_time: float = 2.5
    #: pause between dynamic-query rounds while awaiting results
    round_pause: float = 8.0
    #: connection setup + leaf-to-ultrapeer submission overhead
    initial_overhead: float = 2.0

    def round_start(self, result: DynamicQueryResult, round_index: int) -> float:
        """Virtual time at which round ``round_index`` begins."""
        start = self.initial_overhead
        for previous in result.rounds[:round_index]:
            start += 2 * previous.ttl * self.hop_time + self.round_pause
        return start

    def arrival_for_depth(self, depth: float, max_ttl: int) -> float:
        """First-arrival time of a result hosted ``depth`` hops away.

        Under iterative deepening a replica at hop ``d`` is first reached
        in the round with TTL ``d``, after rounds 1..d-1 have completed:

            arrival = initial + sum_{t<d} (2 t hop + pause) + 2 d hop

        Returns ``math.inf`` when the replica is beyond ``max_ttl``. This
        closed form matches :meth:`first_result_latency` over an actual
        :class:`DynamicQueryResult` (the tests verify it); event-driven
        drivers (:mod:`repro.hybrid.engine`) schedule one result-arrival
        event per distinct depth at exactly these virtual times.
        """
        if math.isinf(depth) or depth > max_ttl:
            return math.inf
        d = max(1, int(depth))
        arrival = self.initial_overhead
        for ttl in range(1, d):
            arrival += 2 * ttl * self.hop_time + self.round_pause
        return arrival + 2 * d * self.hop_time

    def first_result_latency(self, result: DynamicQueryResult) -> float:
        """Seconds until the first result reaches the query node.

        Returns ``math.inf`` when the query produced no results at all.
        """
        located = result.first_result_round_and_hop()
        if located is None:
            return math.inf
        round_index, hop = located
        start = self.round_start(result, round_index)
        return start + 2 * max(1, hop) * self.hop_time

    def completion_latency(self, result: DynamicQueryResult) -> float:
        """Seconds until the final round finished."""
        if not result.rounds:
            return self.initial_overhead
        last = len(result.rounds) - 1
        return self.round_start(result, last) + 2 * result.rounds[last].ttl * self.hop_time
