"""Dynamic querying (iterative deepening).

Gnutella's dynamic querying re-floods queries that returned few results
deeper into the network [Gnutella dynamic-query proposal]. We model it as
iterative deepening: flood with TTL 1, and if the cumulative distinct
result count is below the desired threshold, re-flood with TTL 2, and so
on up to a maximum. Each round re-sends from scratch (that is what the
deployed protocol does), so message costs compound — the inefficiency
Section 4.3 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gnutella.flooding import FloodResult, flood
from repro.gnutella.index import UltrapeerIndex
from repro.gnutella.topology import Topology
from repro.workload.library import SharedFile

DEFAULT_DESIRED_RESULTS = 50
DEFAULT_MAX_TTL = 7


@dataclass
class DynamicQueryResult:
    """Outcome of a dynamically deepened query."""

    origin: int
    terms: tuple[str, ...]
    rounds: list[FloodResult] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(round_.messages for round_ in self.rounds)

    @property
    def final_ttl(self) -> int:
        return self.rounds[-1].ttl if self.rounds else 0

    def results(self) -> list[SharedFile]:
        """Distinct results across rounds (a result = filename + host + size)."""
        seen: set[tuple] = set()
        files: list[SharedFile] = []
        for round_ in self.rounds:
            for match in round_.matches:
                key = match.file.result_key
                if key in seen:
                    continue
                seen.add(key)
                files.append(match.file)
        return files

    @property
    def num_results(self) -> int:
        return len(self.results())

    def first_result_round_and_hop(self) -> tuple[int, int] | None:
        """(round index, hop) of the earliest-arriving result, or None.

        Rounds run sequentially, so the first result overall is the first
        match of the earliest round that has any.
        """
        for round_index, round_ in enumerate(self.rounds):
            hop = round_.first_match_hop()
            if hop is not None:
                return (round_index, hop)
        return None


def dynamic_query(
    topology: Topology,
    indexes: dict[int, UltrapeerIndex],
    origin: int,
    terms: list[str],
    desired_results: int = DEFAULT_DESIRED_RESULTS,
    max_ttl: int = DEFAULT_MAX_TTL,
    start_ttl: int = 1,
    transport=None,
    payload_bytes: int = 0,
) -> DynamicQueryResult:
    """Query with iterative deepening until enough results or max TTL."""
    if desired_results < 1:
        raise ValueError(f"desired_results must be >= 1, got {desired_results}")
    result = DynamicQueryResult(origin=origin, terms=tuple(terms))
    distinct: set[tuple] = set()
    for ttl in range(start_ttl, max_ttl + 1):
        round_ = flood(
            topology,
            indexes,
            origin,
            terms,
            ttl,
            transport=transport,
            payload_bytes=payload_bytes,
        )
        result.rounds.append(round_)
        for match in round_.matches:
            distinct.add(match.file.result_key)
        if len(distinct) >= desired_results:
            break
        if round_.visited_by_hop[-1] == len(topology.ultrapeers):
            break  # the whole overlay has been covered; deeper is futile
    return result
