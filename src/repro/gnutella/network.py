"""Gnutella network facade.

Glues topology, content placement, per-ultrapeer indexes, flooding,
dynamic querying and the latency model into one object experiments can
drive. Also provides BrowseHost (fetching a neighbour's file list), which
the hybrid ultrapeer uses to gather file information (Section 7).
"""

from __future__ import annotations

import random

from repro.common.rng import make_rng
from repro.gnutella.dynamic import (
    DEFAULT_DESIRED_RESULTS,
    DEFAULT_MAX_TTL,
    DynamicQueryResult,
    dynamic_query,
)
from repro.gnutella.flooding import FloodResult, flood
from repro.gnutella.index import UltrapeerIndex
from repro.gnutella.latency import GnutellaLatencyModel
from repro.gnutella.topology import Topology, TopologyConfig, build_topology
from repro.workload.library import ContentLibrary, Placement, SharedFile


class GnutellaNetwork:
    """A fully assembled Gnutella network with content."""

    def __init__(
        self,
        topology: Topology,
        latency_model: GnutellaLatencyModel | None = None,
        rng: random.Random | int | None = None,
        transport=None,
        query_bytes: int = 0,
    ):
        self.topology = topology
        self.latency_model = latency_model or GnutellaLatencyModel()
        self.rng = make_rng(rng)
        #: optional repro.net transport; when set, every flood edge is
        #: delivered as a FloodMessage of ``query_bytes`` on it
        self.transport = transport
        self.query_bytes = query_bytes
        self.indexes: dict[int, UltrapeerIndex] = {
            ultrapeer: UltrapeerIndex() for ultrapeer in topology.ultrapeers
        }
        self.placement: Placement | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        library: ContentLibrary,
        config: TopologyConfig | None = None,
        latency_model: GnutellaLatencyModel | None = None,
        rng: random.Random | int | None = None,
    ) -> "GnutellaNetwork":
        """Build topology, place ``library``'s replicas, index everything."""
        rng = make_rng(rng)
        config = config or TopologyConfig()
        topology = build_topology(config)
        network = cls(topology, latency_model=latency_model, rng=rng)
        placement = library.place(topology.all_nodes(), rng=rng)
        network.load_placement(placement)
        return network

    def load_placement(self, placement: Placement) -> None:
        """Index every replica at the ultrapeer responsible for its node.

        Leaves publish their file lists to their parent ultrapeers;
        ultrapeers index their own files locally.
        """
        self.placement = placement
        for node, files in placement.files_by_node.items():
            if self.topology.is_ultrapeer(node):
                self.indexes[node].add_files(files)
            else:
                for parent in self.topology.leaf_parents.get(node, ()):
                    self.indexes[parent].add_files(files)

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------

    def flood_query(self, origin: int, terms: list[str], ttl: int) -> FloodResult:
        """Plain TTL flood from ``origin`` (a node; leaves go via parent)."""
        return flood(
            self.topology,
            self.indexes,
            self.topology.ultrapeer_of(origin),
            terms,
            ttl,
            transport=self.transport,
            payload_bytes=self.query_bytes,
        )

    def query(
        self,
        origin: int,
        terms: list[str],
        desired_results: int = DEFAULT_DESIRED_RESULTS,
        max_ttl: int = DEFAULT_MAX_TTL,
    ) -> DynamicQueryResult:
        """Issue a query with dynamic deepening, as a modern client does."""
        return dynamic_query(
            self.topology,
            self.indexes,
            self.topology.ultrapeer_of(origin),
            terms,
            desired_results=desired_results,
            max_ttl=max_ttl,
            transport=self.transport,
            payload_bytes=self.query_bytes,
        )

    def first_result_latency(self, result: DynamicQueryResult) -> float:
        return self.latency_model.first_result_latency(result)

    # ------------------------------------------------------------------
    # BrowseHost and bookkeeping
    # ------------------------------------------------------------------

    def browse_host(self, node: int) -> list[SharedFile]:
        """A node's shared file list (Gnutella's BrowseHost API)."""
        if self.placement is None:
            return []
        return self.placement.files_at(node)

    def files_reachable_from(self, ultrapeer: int) -> list[SharedFile]:
        """Files the ultrapeer indexes: its own plus its leaves'."""
        return self.indexes[ultrapeer].files

    def all_results_for(self, terms: list[str]) -> list[SharedFile]:
        """Oracle: every matching replica in the whole network.

        Used by measurement code to compute true recall denominators —
        this is what the paper approximates with the union-of-30.
        """
        if self.placement is None:
            return []
        lowered = [term.lower() for term in terms]
        matches: list[SharedFile] = []
        for files in self.placement.files_by_node.values():
            for file in files:
                name = file.filename.lower()
                if all(term in name for term in lowered):
                    matches.append(file)
        return matches

    def random_ultrapeers(self, count: int) -> list[int]:
        """A uniform sample of distinct ultrapeers (measurement vantages)."""
        count = min(count, len(self.topology.ultrapeers))
        return self.rng.sample(self.topology.ultrapeers, count)
