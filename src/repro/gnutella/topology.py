"""Gnutella ultrapeer/leaf topology generation.

The crawl in Section 4.1 found that ultrapeers come in two degree
profiles, matching LimeWire's development history: newer ultrapeers keep
32 ultrapeer neighbours and support 30 leaves; older ones keep 6
ultrapeer neighbours and support 75 leaves. Leaves connect to a small
number of ultrapeers and publish their file lists there.

``build_topology`` generates a random graph honouring those profiles via
stub matching (a configuration-model construction), then patches
connectivity so floods can reach the whole ultrapeer overlay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.rng import make_rng

# Degree profiles from Section 4.1.
NEW_PROFILE = {"neighbors": 32, "leaf_capacity": 30}
OLD_PROFILE = {"neighbors": 6, "leaf_capacity": 75}


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of a generated Gnutella topology."""

    num_ultrapeers: int = 500
    num_leaves: int = 5000
    #: fraction of ultrapeers running the newer LimeWire profile
    new_client_fraction: float = 0.7
    #: how many ultrapeers each leaf connects to (file list goes to each)
    leaf_connections: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_ultrapeers < 2:
            raise ValueError("need at least 2 ultrapeers")
        if not 0.0 <= self.new_client_fraction <= 1.0:
            raise ValueError("new_client_fraction must be in [0, 1]")
        if self.leaf_connections < 1:
            raise ValueError("leaves must connect to at least one ultrapeer")


@dataclass
class Topology:
    """A concrete ultrapeer/leaf graph."""

    ultrapeers: list[int]
    leaves: list[int]
    #: ultrapeer -> its ultrapeer neighbours
    neighbors: dict[int, list[int]]
    #: leaf -> the ultrapeers it is attached to
    leaf_parents: dict[int, list[int]]
    #: ultrapeer -> its leaves
    ultrapeer_leaves: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.ultrapeers) + len(self.leaves)

    def all_nodes(self) -> list[int]:
        return self.ultrapeers + self.leaves

    def is_ultrapeer(self, node: int) -> bool:
        return node in self.neighbors

    def degree(self, ultrapeer: int) -> int:
        return len(self.neighbors[ultrapeer])

    def ultrapeer_of(self, node: int) -> int:
        """The ultrapeer that handles queries for ``node``.

        For an ultrapeer that is the node itself; for a leaf, its first
        parent (queries from a leaf are sent to an attached ultrapeer).
        """
        if node in self.neighbors:
            return node
        parents = self.leaf_parents.get(node)
        if not parents:
            raise KeyError(f"node {node} is not in the topology")
        return parents[0]

    def connected_ultrapeer_count(self, start: int | None = None) -> int:
        """Size of the connected component containing ``start``."""
        if not self.ultrapeers:
            return 0
        if start is None:
            start = self.ultrapeers[0]
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in self.neighbors[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return len(seen)


def build_topology(config: TopologyConfig) -> Topology:
    """Generate a topology honouring the LimeWire degree profiles."""
    rng = make_rng(config.seed)
    ultrapeers = list(range(config.num_ultrapeers))
    leaves = list(
        range(config.num_ultrapeers, config.num_ultrapeers + config.num_leaves)
    )

    profiles = _assign_profiles(ultrapeers, config.new_client_fraction, rng)
    neighbors = _match_stubs(ultrapeers, profiles, rng)
    _ensure_connected(ultrapeers, neighbors, rng)
    leaf_parents, ultrapeer_leaves = _attach_leaves(
        ultrapeers, leaves, profiles, config.leaf_connections, rng
    )
    return Topology(
        ultrapeers=ultrapeers,
        leaves=leaves,
        neighbors=neighbors,
        leaf_parents=leaf_parents,
        ultrapeer_leaves=ultrapeer_leaves,
    )


def _assign_profiles(
    ultrapeers: list[int], new_fraction: float, rng: random.Random
) -> dict[int, dict]:
    profiles: dict[int, dict] = {}
    for ultrapeer in ultrapeers:
        profile = NEW_PROFILE if rng.random() < new_fraction else OLD_PROFILE
        profiles[ultrapeer] = profile
    return profiles


def _match_stubs(
    ultrapeers: list[int], profiles: dict[int, dict], rng: random.Random
) -> dict[int, list[int]]:
    """Configuration-model edge construction with target degrees."""
    max_degree = len(ultrapeers) - 1
    stubs: list[int] = []
    for ultrapeer in ultrapeers:
        degree = min(profiles[ultrapeer]["neighbors"], max_degree)
        stubs.extend([ultrapeer] * degree)
    rng.shuffle(stubs)
    neighbors: dict[int, set[int]] = {ultrapeer: set() for ultrapeer in ultrapeers}
    # Pair consecutive stubs; skip self-loops and parallel edges.
    for index in range(0, len(stubs) - 1, 2):
        a, b = stubs[index], stubs[index + 1]
        if a == b or b in neighbors[a]:
            continue
        neighbors[a].add(b)
        neighbors[b].add(a)
    return {ultrapeer: sorted(peers) for ultrapeer, peers in neighbors.items()}


def _ensure_connected(
    ultrapeers: list[int], neighbors: dict[int, list[int]], rng: random.Random
) -> None:
    """Link stray components to the main one (in place)."""
    remaining = set(ultrapeers)
    components: list[list[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = [start]
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in neighbors[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        components.append(component)
        remaining -= seen
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    main = components[0]
    for component in components[1:]:
        a = rng.choice(component)
        b = rng.choice(main)
        neighbors[a] = sorted(set(neighbors[a]) | {b})
        neighbors[b] = sorted(set(neighbors[b]) | {a})


def _attach_leaves(
    ultrapeers: list[int],
    leaves: list[int],
    profiles: dict[int, dict],
    connections: int,
    rng: random.Random,
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    capacity = {up: profiles[up]["leaf_capacity"] for up in ultrapeers}
    available = [up for up in ultrapeers if capacity[up] > 0]
    leaf_parents: dict[int, list[int]] = {}
    ultrapeer_leaves: dict[int, list[int]] = {up: [] for up in ultrapeers}
    for leaf in leaves:
        parents: list[int] = []
        for _ in range(min(connections, len(available))):
            candidates = [up for up in available if up not in parents]
            if not candidates:
                break
            parent = rng.choice(candidates)
            parents.append(parent)
            ultrapeer_leaves[parent].append(leaf)
            capacity[parent] -= 1
            if capacity[parent] == 0:
                available.remove(parent)
        if not parents:
            # Network full: over-subscribe a random ultrapeer, as real
            # clients do when no slots are advertised.
            parent = rng.choice(ultrapeers)
            parents = [parent]
            ultrapeer_leaves[parent].append(leaf)
        leaf_parents[leaf] = parents
    return leaf_parents, ultrapeer_leaves
