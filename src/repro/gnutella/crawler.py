"""Topology crawler and flooding-overhead analysis (Sections 4.1 and 4.3).

The paper crawled ~100,000 Gnutella nodes in 45 minutes by recursively
asking nodes for their neighbour lists from 30 PlanetLab ultrapeers in
parallel. ``crawl`` reproduces that process against a simulated topology
(with a configurable non-response rate, which is why the paper calls its
size estimate a lower bound). ``flood_overhead_curve`` post-processes the
crawled graph exactly as Section 4.3 does to produce Figure 8: the number
of ultrapeers visited versus query messages sent, as the search horizon
deepens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.rng import make_rng
from repro.gnutella.flooding import flood
from repro.gnutella.topology import Topology


@dataclass
class CrawlResult:
    """What a crawl discovered."""

    discovered_ultrapeers: set[int] = field(default_factory=set)
    discovered_leaves: set[int] = field(default_factory=set)
    #: ultrapeer -> neighbour list as reported to the crawler
    neighbor_lists: dict[int, list[int]] = field(default_factory=dict)
    api_calls: int = 0
    non_responders: int = 0

    @property
    def estimated_network_size(self) -> int:
        """Lower-bound estimate of network size, as in the paper."""
        return len(self.discovered_ultrapeers) + len(self.discovered_leaves)


def crawl(
    topology: Topology,
    seeds: list[int],
    response_rate: float = 1.0,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Parallel BFS crawl from ``seeds`` using the neighbour-list API.

    ``response_rate`` is the probability a contacted ultrapeer answers;
    non-responders are discovered (someone listed them) but contribute no
    neighbour list, making the crawl's size estimate a lower bound.
    """
    if not 0.0 < response_rate <= 1.0:
        raise ValueError(f"response_rate must be in (0, 1], got {response_rate}")
    rng = make_rng(rng)
    result = CrawlResult()
    frontier = [seed for seed in seeds if topology.is_ultrapeer(seed)]
    result.discovered_ultrapeers.update(frontier)
    contacted: set[int] = set()
    while frontier:
        next_frontier: list[int] = []
        for ultrapeer in frontier:
            if ultrapeer in contacted:
                continue
            contacted.add(ultrapeer)
            result.api_calls += 1
            if rng.random() > response_rate:
                result.non_responders += 1
                continue
            neighbors = topology.neighbors[ultrapeer]
            result.neighbor_lists[ultrapeer] = list(neighbors)
            result.discovered_leaves.update(topology.ultrapeer_leaves.get(ultrapeer, ()))
            for neighbor in neighbors:
                if neighbor not in result.discovered_ultrapeers:
                    result.discovered_ultrapeers.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return result


def flood_overhead_curve(
    topology: Topology,
    origins: list[int],
    max_ttl: int = 10,
) -> list[tuple[float, float]]:
    """Average (messages, ultrapeers visited) per search horizon depth.

    For each origin, floods a match-nothing query at increasing TTL and
    records cumulative messages vs cumulative ultrapeers reached; curves
    are averaged across origins. This is the Figure 8 computation: based
    on the crawled topology, with duplicate messages counted but
    duplicate deliveries suppressed.
    """
    if not origins:
        raise ValueError("need at least one origin")
    empty_indexes: dict = {}
    curves: list[list[tuple[int, int]]] = []
    for origin in origins:
        result = flood(topology, empty_indexes, origin, ["\x00nonexistent\x00"], max_ttl)
        curve = list(zip(result.messages_by_hop, result.visited_by_hop))
        curves.append(curve)
    depth = max(len(curve) for curve in curves)
    averaged: list[tuple[float, float]] = []
    for hop in range(depth):
        points = [curve[min(hop, len(curve) - 1)] for curve in curves]
        mean_messages = sum(point[0] for point in points) / len(points)
        mean_visited = sum(point[1] for point in points) / len(points)
        averaged.append((mean_messages, mean_visited))
    return averaged
