"""Union-of-k measurement campaign (Section 4.2).

The paper replays each of 700 distinct queries from 30 PlanetLab
ultrapeers and takes the union of the results as a lower bound on the
network's true content ("Union-of-30"). This module reproduces that
campaign against a simulated network.

For speed, the campaign exploits the determinism of flooding: the result
set a vantage obtains equals the matching replicas indexed at ultrapeers
within its BFS horizon, so we precompute per-vantage BFS depths once and
intersect per query — provably equivalent to running ``flood`` per
(query, vantage), which the test suite verifies at small scale. Latency
uses the same round/hop arithmetic as the full dynamic-query simulation.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.gnutella.latency import GnutellaLatencyModel
from repro.gnutella.network import GnutellaNetwork
from repro.piersearch.tokenizer import tokenize
from repro.workload.library import SharedFile
from repro.workload.queries import Query, QueryWorkload
from repro.workload.trace import QueryObservation, TraceBundle

DEFAULT_UNION_KS = (5, 15, 25, 30)


class ContentMatcher:
    """Matches queries against the network's distinct filenames, fast.

    Builds one token index over distinct filenames; per-query matching
    narrows candidates through the index and verifies with the same
    substring semantics as :meth:`GnutellaNetwork.all_results_for`
    (equivalence is covered by tests).
    """

    def __init__(self, network: GnutellaNetwork):
        if network.placement is None:
            raise ValueError("network has no content placement")
        self.placement = network.placement
        self.filenames = list(self.placement.replicas_by_filename)
        self._token_index: dict[str, list[int]] = {}
        for position, filename in enumerate(self.filenames):
            for token in set(tokenize(filename)):
                self._token_index.setdefault(token, []).append(position)

    def matching_filenames(self, terms: list[str]) -> list[str]:
        lowered = [term.lower() for term in terms]
        best: list[int] | None = None
        for term in lowered:
            postings = [
                positions
                for token, positions in self._token_index.items()
                if term in token
            ]
            if not postings:
                return []
            if len(postings) > 50 and best is not None:
                continue
            union: set[int] = set()
            for positions in postings:
                union.update(positions)
            if best is None or len(union) < len(best):
                best = sorted(union)
        candidates = best if best is not None else range(len(self.filenames))
        matched: list[str] = []
        for position in candidates:
            name = self.filenames[position].lower()
            if all(term in name for term in lowered):
                matched.append(self.filenames[position])
        return matched

    def matching_replicas(self, terms: list[str]) -> list[SharedFile]:
        replicas: list[SharedFile] = []
        for filename in self.matching_filenames(terms):
            replicas.extend(self.placement.replicas_by_filename[filename])
        return replicas


@dataclass
class QueryReplay:
    """Results of replaying one query from every vantage."""

    query: Query
    #: result count seen by each vantage individually
    vantage_results: list[int]
    #: k -> union result count over the first k vantages
    union_results_by_k: dict[int, int]
    #: k -> union distinct-filename count over the first k vantages
    union_distinct_by_k: dict[int, int]
    single_results: int
    single_distinct: int
    #: mean replicas per distinct filename in the full-union result set
    average_replication: float
    #: modelled first-result latency at the designated vantage (inf = none)
    first_result_latency: float
    matched_filenames: list[str] = field(default_factory=list)


@dataclass
class MeasurementCampaign:
    """A full replay campaign and its derived statistics."""

    replays: list[QueryReplay]
    vantages: list[int]
    #: dynamic-query client parameters used during the replay
    desired_results: int
    max_ttl: int

    def result_size_cdf(self, union_k: int | None = None) -> list[tuple[int, float]]:
        """CDF points of result-set size (single-node or union-of-k)."""
        sizes = [
            replay.union_results_by_k[union_k] if union_k else replay.single_results
            for replay in self.replays
        ]
        sizes.sort()
        n = len(sizes)
        points: list[tuple[int, float]] = []
        for index, size in enumerate(sizes, start=1):
            if points and points[-1][0] == size:
                points[-1] = (size, index / n)
            else:
                points.append((size, index / n))
        return points

    def fraction_with_at_most(self, threshold: int, union_k: int | None = None) -> float:
        """Fraction of queries returning <= ``threshold`` results."""
        if not self.replays:
            return 0.0
        count = sum(
            1
            for replay in self.replays
            if (replay.union_results_by_k[union_k] if union_k else replay.single_results)
            <= threshold
        )
        return count / len(self.replays)

    def fraction_distinct_at_most(self, threshold: int, union_k: int | None = None) -> float:
        """Fraction of queries returning <= ``threshold`` distinct results."""
        if not self.replays:
            return 0.0
        count = sum(
            1
            for replay in self.replays
            if (replay.union_distinct_by_k[union_k] if union_k else replay.single_distinct)
            <= threshold
        )
        return count / len(self.replays)

    def to_trace_bundle(self, replica_distribution: dict[str, int]) -> TraceBundle:
        """Package the campaign as a persistable trace."""
        max_k = max(self.replays[0].union_results_by_k) if self.replays else 0
        observations = [
            QueryObservation(
                query_id=replay.query.query_id,
                terms=replay.query.terms,
                results_single=replay.single_results,
                results_union=replay.union_results_by_k.get(max_k, replay.single_results),
                distinct_single=replay.single_distinct,
                distinct_union=replay.union_distinct_by_k.get(max_k, replay.single_distinct),
                average_replication=replay.average_replication,
                first_result_latency=replay.first_result_latency,
            )
            for replay in self.replays
        ]
        return TraceBundle(
            replica_distribution=dict(replica_distribution),
            observations=observations,
            metadata={
                "vantages": len(self.vantages),
                "desired_results": self.desired_results,
                "max_ttl": self.max_ttl,
            },
        )


def replay_campaign(
    network: GnutellaNetwork,
    workload: QueryWorkload,
    num_vantages: int = 30,
    desired_results: int = 150,
    max_ttl: int = 4,
    union_ks: tuple[int, ...] = DEFAULT_UNION_KS,
    latency_model: GnutellaLatencyModel | None = None,
) -> MeasurementCampaign:
    """Replay ``workload`` from ``num_vantages`` ultrapeers and union results.

    Each vantage behaves like a dynamic-querying LimeWire client: it
    deepens its flood TTL by TTL until it has accumulated
    ``desired_results`` results or reaches ``max_ttl``, and its result set
    is everything found up to the stopping TTL.
    """
    latency_model = latency_model or network.latency_model
    vantages = network.random_ultrapeers(num_vantages)
    union_ks = tuple(k for k in union_ks if k <= len(vantages)) or (len(vantages),)

    depths = [bfs_depths(network, vantage) for vantage in vantages]
    file_hosts = index_hosts_by_result(network)
    matcher = ContentMatcher(network)

    replays: list[QueryReplay] = []
    for position, query in enumerate(workload):
        replays.append(
            _replay_one(
                matcher,
                query,
                vantages,
                depths,
                file_hosts,
                desired_results,
                union_ks,
                latency_model,
                max_ttl,
                designated=position % len(vantages),
            )
        )
    return MeasurementCampaign(
        replays=replays,
        vantages=vantages,
        desired_results=desired_results,
        max_ttl=max_ttl,
    )


def bfs_depths(network: GnutellaNetwork, origin: int) -> dict[int, int]:
    """Hop depth of every ultrapeer from ``origin`` over the overlay."""
    topology = network.topology
    start = topology.ultrapeer_of(origin)
    depth = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors[node]:
            if neighbor not in depth:
                depth[neighbor] = depth[node] + 1
                queue.append(neighbor)
    return depth


def index_hosts_by_result(network: GnutellaNetwork) -> dict[tuple, list[int]]:
    """result_key -> the ultrapeers at which that replica is indexed."""
    hosts: dict[tuple, list[int]] = {}
    for ultrapeer, index in network.indexes.items():
        for file in index.files:
            hosts.setdefault(file.result_key, []).append(ultrapeer)
    return hosts


def _replay_one(
    matcher: ContentMatcher,
    query: Query,
    vantages: list[int],
    depths: list[dict[int, int]],
    file_hosts: dict[tuple, list[int]],
    desired_results: int,
    union_ks: tuple[int, ...],
    latency_model: GnutellaLatencyModel,
    max_ttl: int,
    designated: int,
) -> QueryReplay:
    matches = matcher.matching_replicas(list(query.terms))
    # Depth of each matching replica from each vantage = min depth over the
    # ultrapeers indexing it.
    replica_depths: list[list[int]] = []
    keys: list[tuple] = []
    for file in matches:
        key = file.result_key
        ultrapeers = file_hosts.get(key, ())
        per_vantage = [
            min(
                (depth_map[up] for up in ultrapeers if up in depth_map),
                default=math.inf,
            )
            for depth_map in depths
        ]
        replica_depths.append(per_vantage)
        keys.append(key)

    vantage_sets: list[set[int]] = []
    for vantage_index in range(len(vantages)):
        vantage_depths = [per_vantage[vantage_index] for per_vantage in replica_depths]
        stop_ttl = dynamic_stop_ttl(vantage_depths, desired_results, max_ttl)
        reached = {
            row for row, depth in enumerate(vantage_depths) if depth <= stop_ttl
        }
        vantage_sets.append(reached)

    union_results_by_k: dict[int, int] = {}
    union_distinct_by_k: dict[int, int] = {}
    running: set[int] = set()
    next_k = iter(sorted(union_ks))
    target = next(next_k, None)
    for count, reached in enumerate(vantage_sets, start=1):
        running |= reached
        while target is not None and count == target:
            union_results_by_k[target] = len(running)
            union_distinct_by_k[target] = len({keys[row][0] for row in running})
            target = next(next_k, None)

    single_set = vantage_sets[designated]
    single_distinct = len({keys[row][0] for row in single_set})

    # Average replication over distinct filenames in the full-union set,
    # approximated from the union itself as the paper does.
    full_union: set[int] = set()
    for reached in vantage_sets:
        full_union |= reached
    replication_by_name: dict[str, int] = {}
    for row in full_union:
        name = keys[row][0]
        replication_by_name[name] = replication_by_name.get(name, 0) + 1
    if replication_by_name:
        average_replication = sum(replication_by_name.values()) / len(replication_by_name)
    else:
        average_replication = 0.0

    first_depth = min(
        (replica_depths[row][designated] for row in range(len(keys))),
        default=math.inf,
    )
    latency = first_result_latency_for_depth(first_depth, latency_model, max_ttl)

    return QueryReplay(
        query=query,
        vantage_results=[len(reached) for reached in vantage_sets],
        union_results_by_k=union_results_by_k,
        union_distinct_by_k=union_distinct_by_k,
        single_results=len(single_set),
        single_distinct=single_distinct,
        average_replication=average_replication,
        first_result_latency=latency,
        matched_filenames=sorted({key[0] for key in keys}),
    )


def dynamic_stop_ttl(depths: list[float], desired_results: int, max_ttl: int) -> int:
    """TTL at which a dynamic-querying client stops deepening.

    The client floods TTL 1, 2, ... and stops as soon as the cumulative
    result count reaches ``desired_results`` (or ``max_ttl`` is hit). This
    mirrors :func:`repro.gnutella.dynamic.dynamic_query`'s stopping rule.
    """
    for ttl in range(1, max_ttl + 1):
        found = sum(1 for depth in depths if depth <= ttl)
        if found >= desired_results:
            return ttl
    return max_ttl


def first_result_latency_for_depth(
    depth: float, latency_model: GnutellaLatencyModel, max_ttl: int
) -> float:
    """Latency until dynamic querying first reaches a replica at ``depth``.

    Delegates to :meth:`GnutellaLatencyModel.arrival_for_depth`, the
    round/hop closed form shared with the event-driven query engine.
    """
    return latency_model.arrival_for_depth(depth, max_ttl)
