"""Query Recall (QR) and Query Distinct Recall (QDR).

Section 4.2 defines:

* **QR** — the percentage of available results in the network returned;
  every replica counts as a distinct result (results are distinguished by
  filename, host, and filesize).
* **QDR** — the percentage of available *distinct* results returned;
  replicas of the same filename collapse to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.workload.library import SharedFile


def query_recall(returned: list[SharedFile], available: list[SharedFile]) -> float:
    """QR: fraction of available replicas returned (1.0 when none exist).

    Following the paper, a query with no available results has undefined
    recall; we report 1.0 so empty queries do not drag averages down.
    """
    available_keys = {file.result_key for file in available}
    if not available_keys:
        return 1.0
    returned_keys = {file.result_key for file in returned} & available_keys
    return len(returned_keys) / len(available_keys)


def query_distinct_recall(returned: list[SharedFile], available: list[SharedFile]) -> float:
    """QDR: fraction of available distinct filenames returned."""
    available_names = {file.filename for file in available}
    if not available_names:
        return 1.0
    returned_names = {file.filename for file in returned} & available_names
    return len(returned_names) / len(available_names)


@dataclass(frozen=True)
class RecallSummary:
    """Average recall over a batch of queries."""

    average_qr: float
    average_qdr: float
    num_queries: int


def recall_summary(
    pairs: list[tuple[list[SharedFile], list[SharedFile]]]
) -> RecallSummary:
    """Average QR/QDR over ``(returned, available)`` pairs."""
    if not pairs:
        return RecallSummary(average_qr=0.0, average_qdr=0.0, num_queries=0)
    qrs = [query_recall(returned, available) for returned, available in pairs]
    qdrs = [query_distinct_recall(returned, available) for returned, available in pairs]
    return RecallSummary(
        average_qr=mean(qrs), average_qdr=mean(qdrs), num_queries=len(pairs)
    )
