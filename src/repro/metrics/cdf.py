"""Discrete CDF helpers used by the figure reproductions."""

from __future__ import annotations

from collections.abc import Sequence


def discrete_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """(value, fraction <= value) pairs over a sample."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of a sample, by linear interpolation."""
    if not values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cdf_at(points: list[tuple[float, float]], x: float) -> float:
    """Evaluate a discrete CDF (as produced by :func:`discrete_cdf`) at x."""
    result = 0.0
    for value, cumulative in points:
        if value <= x:
            result = cumulative
        else:
            break
    return result
