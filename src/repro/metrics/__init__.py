"""Recall metrics and distribution helpers (Section 4.2 definitions)."""

from repro.metrics.recall import (
    query_distinct_recall,
    query_recall,
    recall_summary,
    RecallSummary,
)
from repro.metrics.cdf import cdf_at, discrete_cdf, fraction_at_most

__all__ = [
    "query_recall",
    "query_distinct_recall",
    "recall_summary",
    "RecallSummary",
    "cdf_at",
    "discrete_cdf",
    "fraction_at_most",
]
