"""Shared primitives used by every subsystem.

This package hosts the small building blocks the rest of the reproduction
relies on: 160-bit identifiers and hashing (:mod:`repro.common.ids`),
deterministic random-number helpers (:mod:`repro.common.rng`), long-tailed
distribution samplers (:mod:`repro.common.zipf`), the wire-cost model
(:mod:`repro.common.units`) and the exception hierarchy
(:mod:`repro.common.errors`).
"""

from repro.common.errors import (
    ReproError,
    DhtError,
    KeyNotFoundError,
    NodeNotFoundError,
    PlanError,
    SchemaError,
    WorkloadError,
)
from repro.common.ids import (
    KEY_BITS,
    KEY_SPACE,
    NodeId,
    hash_key,
    hash_to_int,
    ring_distance,
    in_interval,
)
from repro.common.rng import make_rng, spawn_rng
from repro.common.units import (
    BYTES_PER_KB,
    CostModel,
    DEFAULT_COST_MODEL,
    MessageCost,
)
from repro.common.zipf import ZipfSampler, long_tail_replica_counts, zipf_weights

__all__ = [
    "ReproError",
    "DhtError",
    "KeyNotFoundError",
    "NodeNotFoundError",
    "PlanError",
    "SchemaError",
    "WorkloadError",
    "KEY_BITS",
    "KEY_SPACE",
    "NodeId",
    "hash_key",
    "hash_to_int",
    "ring_distance",
    "in_interval",
    "make_rng",
    "spawn_rng",
    "BYTES_PER_KB",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "MessageCost",
    "ZipfSampler",
    "long_tail_replica_counts",
    "zipf_weights",
]
