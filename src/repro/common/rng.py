"""Deterministic randomness.

Every stochastic component takes a :class:`random.Random` (or a seed) so
experiments are reproducible run-to-run. ``spawn_rng`` derives independent
streams from a parent so that adding randomness to one subsystem does not
perturb another.
"""

from __future__ import annotations

import random
import zlib

DEFAULT_SEED = 0x5EED


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a Random instance from a seed, an existing Random, or default."""
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def spawn_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent, reproducible stream from ``parent``.

    The label keeps the derivation stable even if the call order of other
    spawns changes. The label hash must itself be process-stable (built-in
    ``hash()`` is salted per interpreter run), so we use CRC32.
    """
    seed = parent.getrandbits(64) ^ zlib.crc32(label.encode("utf-8"))
    return random.Random(seed)
