"""Long-tailed distribution samplers.

The paper's central empirical observation is that file replication in
Gnutella follows a long-tailed (Zipf-like) distribution: a moderate number
of popular files with many replicas, and a long tail of rare files with one
or two replicas. These helpers generate such distributions deterministically
so traces can be regenerated bit-for-bit.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from collections.abc import Sequence

from repro.common.rng import make_rng


def zipf_weights(n: int, alpha: float = 1.0) -> list[float]:
    """Unnormalised Zipf weights ``1/rank**alpha`` for ranks 1..n."""
    if n <= 0:
        raise ValueError(f"need n >= 1, got {n}")
    if alpha < 0:
        raise ValueError(f"need alpha >= 0, got {alpha}")
    return [1.0 / (rank**alpha) for rank in range(1, n + 1)]


class ZipfSampler:
    """Sample ranks 1..n from a Zipf(alpha) distribution in O(log n).

    Uses a precomputed cumulative table plus binary search, which is fast
    enough for the trace sizes used here (hundreds of thousands of draws).
    """

    def __init__(
        self, n: int, alpha: float = 1.0, rng: random.Random | int | None = None
    ):
        self.n = n
        self.alpha = alpha
        # Routed through make_rng (seeded-RNG audit): omitting rng must
        # still yield bit-for-bit reproducible traces.
        self._rng = make_rng(rng)
        weights = zipf_weights(n, alpha)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self) -> int:
        """Draw a rank in [1, n]; rank 1 is the most popular."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point) + 1

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` independent ranks."""
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank {rank} outside [1, {self.n}]")
        return (1.0 / rank**self.alpha) / self._total


def calibrate_power_law_alpha(
    singleton_fraction: float, max_value: int, tolerance: float = 1e-6
) -> float:
    """Exponent alpha such that P(X=1) = singleton_fraction for a discrete
    power law P(x) proportional to x**-alpha truncated at ``max_value``.

    ``P(1) = 1 / sum_{r=1}^{max} r^-alpha`` is increasing in alpha, so a
    bisection solves it.
    """
    if not 0.0 < singleton_fraction < 1.0:
        raise ValueError(f"singleton_fraction must be in (0,1), got {singleton_fraction}")
    if max_value < 2:
        raise ValueError(f"max_value must be >= 2, got {max_value}")
    target = 1.0 / singleton_fraction

    def normaliser(alpha: float) -> float:
        return sum(r**-alpha for r in range(1, max_value + 1))

    low, high = 0.0, 10.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if normaliser(mid) > target:
            low = mid  # tail still too heavy; increase alpha
        else:
            high = mid
    return (low + high) / 2


def long_tail_replica_counts(
    num_items: int,
    alpha: float | None = None,
    max_replicas: int = 1000,
    singleton_fraction: float = 0.23,
    rng: random.Random | int | None = None,
) -> list[int]:
    """Replica count per distinct item, matching the paper's trace shape.

    Counts are i.i.d. draws from a discrete power law ``P(R=r) ~ r**-alpha``
    truncated at ``max_replicas``. When ``alpha`` is omitted it is
    calibrated so that items with exactly one replica are
    ``singleton_fraction`` of distinct items — the paper reports that
    publishing at replica threshold 1 publishes 23% of items (Figure 10).

    Returns a list of length ``num_items`` sorted descending (popular
    items first).
    """
    if num_items <= 0:
        raise ValueError(f"need num_items >= 1, got {num_items}")
    rng = make_rng(rng)
    if alpha is None:
        alpha = calibrate_power_law_alpha(singleton_fraction, max_replicas)
    values = list(range(1, max_replicas + 1))
    weights = [r**-alpha for r in values]
    counts = rng.choices(values, weights=weights, k=num_items)
    counts.sort(reverse=True)
    return counts


def sample_power_law_int(
    rng: random.Random, minimum: int, maximum: int, alpha: float = 2.0
) -> int:
    """Draw an integer from a bounded continuous power law (density x^-alpha)."""
    if minimum < 1 or maximum < minimum:
        raise ValueError(f"bad bounds [{minimum}, {maximum}]")
    if maximum == minimum:
        return minimum
    u = rng.random()
    if alpha == 1.0:
        value = minimum * math.exp(u * math.log(maximum / minimum))
    else:
        a = 1.0 - alpha
        lo = minimum**a
        hi = maximum**a
        value = (lo + u * (hi - lo)) ** (1.0 / a)
    return max(minimum, min(maximum, int(round(value))))


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Return (value, fraction <= value) pairs for plotting CDFs."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points
