"""Exception hierarchy for the reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DhtError(ReproError):
    """Base class for DHT failures."""


class KeyNotFoundError(DhtError):
    """A DHT ``get`` found no value stored under the requested key."""


class NodeNotFoundError(DhtError):
    """An operation referenced a node id that is not part of the network."""


class ShardWorkerError(ReproError):
    """A sharded-simulation worker process failed or died mid-run.

    Raised by the process backend when a worker's pipe breaks (the fork
    was killed or crashed) or when the worker reports an exception; the
    parent terminates the remaining workers before raising, so no
    orphaned forks survive the failure.
    """


class SchemaError(ReproError):
    """A tuple did not conform to its table schema."""


class PlanError(ReproError):
    """A query plan was malformed or could not be executed."""


class WorkloadError(ReproError):
    """Workload or trace generation was asked for something impossible."""
