"""Exception hierarchy for the reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DhtError(ReproError):
    """Base class for DHT failures.

    Lookup-path failures carry structured context so a scenario run's
    exception is diagnosable on its own: ``key`` is the ring key being
    routed, ``path`` the node ids visited before the failure (the partial
    route), and ``hops`` the overlay hops taken. All three default to
    ``None`` for failures that have no route (empty network, bad node id).
    """

    def __init__(
        self,
        message: object = "",
        *,
        key: int | None = None,
        path: list[int] | None = None,
        hops: int | None = None,
    ):
        super().__init__(message)
        self.key = key
        self.path = list(path) if path is not None else None
        if hops is None and self.path is not None:
            hops = max(0, len(self.path) - 1)
        self.hops = hops


class KeyNotFoundError(DhtError):
    """A DHT ``get`` found no value stored under the requested key."""


class NodeNotFoundError(DhtError):
    """An operation referenced a node id that is not part of the network."""


class ShardWorkerError(ReproError):
    """A sharded-simulation worker process failed or died mid-run.

    Raised by the process backend when a worker's pipe breaks (the fork
    was killed or crashed) or when the worker reports an exception; the
    parent terminates the remaining workers before raising, so no
    orphaned forks survive the failure.
    """


class SchemaError(ReproError):
    """A tuple did not conform to its table schema."""


class PlanError(ReproError):
    """A query plan was malformed or could not be executed."""


class WorkloadError(ReproError):
    """Workload or trace generation was asked for something impossible."""


class ScenarioError(ReproError):
    """An adversarial scenario specification is invalid or inconsistent."""
