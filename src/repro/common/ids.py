"""Identifiers and consistent-hashing helpers.

The DHT operates on a 160-bit circular key space, as in Chord and Bamboo.
Node ids and content keys are both points on this ring; :func:`hash_key`
maps arbitrary strings/bytes onto it with SHA-1 (the hash Chord and the
original PIER deployment used).
"""

from __future__ import annotations

import hashlib

KEY_BITS = 160
KEY_SPACE = 1 << KEY_BITS

# A NodeId is just an int in [0, KEY_SPACE); the alias documents intent.
NodeId = int


def hash_to_int(data: bytes) -> int:
    """Hash raw bytes onto the 160-bit ring."""
    return int.from_bytes(hashlib.sha1(data).digest(), "big")


def hash_key(key: str) -> int:
    """Hash a string key (e.g. a keyword or a fileID) onto the ring."""
    return hash_to_int(key.encode("utf-8"))


def ring_distance(start: int, end: int) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    return (end - start) % KEY_SPACE


def in_interval(value: int, start: int, end: int, inclusive_end: bool = True) -> bool:
    """Return True if ``value`` lies in the clockwise interval (start, end].

    The interval wraps around zero. With ``inclusive_end=False`` the interval
    is open on both sides: (start, end).
    """
    value %= KEY_SPACE
    start %= KEY_SPACE
    end %= KEY_SPACE
    if start == end:
        # The interval covers the whole ring except `start` itself.
        return value != start or inclusive_end
    dist_value = ring_distance(start, value)
    dist_end = ring_distance(start, end)
    if inclusive_end:
        return 0 < dist_value <= dist_end
    return 0 < dist_value < dist_end


def format_id(value: int, digits: int = 10) -> str:
    """Short hex rendering of a ring id, for logs and repr()s."""
    return f"{value:040x}"[:digits]
