"""Bloom filters.

Two uses in the paper:

* Footnote 2: newer LimeWire leaves publish Bloom filters of their files'
  keywords to ultrapeers (the Query Routing Protocol), cutting publish and
  search costs at the price of losing substring/wildcard matching.
* Section 6.3: term-frequency statistics for the TF/TPF rare-item schemes
  can be Bloom-compressed to shrink their memory footprint.
* The PIER optimizer's Bloom join (:mod:`repro.pier.optimizer`): the
  rarest posting list ships as a Bloom filter instead of a key digest,
  and only probable matches travel back.

The implementation is a classic k-hash Bloom filter over a bit array
(stored in one Python int, which keeps it compact and hashable-free).
"""

from __future__ import annotations

import hashlib
import math


class BloomFilter:
    """A fixed-size Bloom filter with double-hashing.

    False positives occur at roughly ``(1 - e^(-k n / m))^k``; false
    negatives never occur.
    """

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits < 8:
            raise ValueError(f"need at least 8 bits, got {num_bits}")
        if num_hashes < 1:
            raise ValueError(f"need at least 1 hash, got {num_hashes}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    @classmethod
    def with_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size the filter for ``expected_items`` at a target FP rate."""
        if expected_items < 1:
            raise ValueError(f"need expected_items >= 1, got {expected_items}")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError(f"fp rate must be in (0,1), got {false_positive_rate}")
        num_bits = max(8, int(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
        num_hashes = max(1, int(round(num_bits / expected_items * math.log(2))))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    def _positions(self, item: str):
        digest = hashlib.sha1(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full cycle
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        for position in self._positions(item):
            self._bits |= 1 << position
        self._count += 1

    def update(self, items) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: str) -> bool:
        return all(self._bits >> position & 1 for position in self._positions(item))

    def __len__(self) -> int:
        """Number of add() calls (not distinct items)."""
        return self._count

    @property
    def size_bytes(self) -> int:
        """Wire/storage size of the bit array."""
        return (self.num_bits + 7) // 8

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set; high fill means high false-positive rate."""
        return bin(self._bits).count("1") / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """FP probability implied by the current fill ratio."""
        return self.fill_ratio**self.num_hashes


def bloom_for_keys(keys, false_positive_rate: float = 0.01) -> BloomFilter:
    """Build a filter over ``keys``, sized for them at the target FP rate.

    The single sizing rule both PIER runtimes (atomic executor and
    streaming dataflow) use for the Bloom join, so the filter a query
    ships is bit-identical whichever runtime executes it. An empty key
    set yields the minimal (8-bit, matches-nothing) filter.
    """
    keys = list(keys)
    if not keys:
        return BloomFilter(num_bits=8, num_hashes=1)
    bloom = BloomFilter.with_capacity(len(keys), false_positive_rate)
    bloom.update(keys)
    return bloom
