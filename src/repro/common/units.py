"""Wire-cost model.

All system costs in the paper are dominated by communication overhead,
measured in transmitted messages and bytes. This module centralises the
per-message byte accounting so the PIER executor, the PIERSearch publisher
and the Gnutella simulator all charge consistent costs.

The defaults are calibrated to the numbers reported in Section 7 of the
paper: ~3.5 KB to publish one file (4 KB with the InvertedCache option),
~850 bytes to ship a PIER query, and ~20 KB per distributed-join query.
The dominant contributor in the paper was Java serialization and
self-describing tuples, which we model with ``serialization_overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BYTES_PER_KB = 1024


@dataclass(frozen=True)
class MessageCost:
    """Bytes and message count charged for one logical operation."""

    messages: int
    bytes: int

    def __add__(self, other: "MessageCost") -> "MessageCost":
        return MessageCost(self.messages + other.messages, self.bytes + other.bytes)

    def scaled(self, factor: int) -> "MessageCost":
        return MessageCost(self.messages * factor, self.bytes * factor)

    @property
    def kilobytes(self) -> float:
        return self.bytes / BYTES_PER_KB


@dataclass(frozen=True)
class CostModel:
    """Byte-level cost parameters for PIER/PIERSearch messages.

    Attributes mirror the artifacts the paper attributes costs to:

    * ``header_bytes`` — DHT routing + transport header per message.
    * ``serialization_overhead`` — multiplicative factor modelling Java
      serialization and self-describing tuples (the paper notes both could
      "in principle be eliminated").
    * ``tuple_base_bytes`` — fixed per-tuple framing.
    * ``fileid_bytes`` — a SHA-1 fileID.
    * ``address_bytes`` — IP + port + filesize metadata on an Item tuple.
    * ``query_plan_bytes`` — a serialized PIER query plan (~850 B on the
      wire in the deployment).
    """

    header_bytes: int = 60
    serialization_overhead: float = 1.6
    tuple_base_bytes: int = 300
    fileid_bytes: int = 20
    address_bytes: int = 10
    query_plan_bytes: int = 850

    def tuple_bytes(self, payload_bytes: int) -> int:
        """Wire size of one tuple with ``payload_bytes`` of real content."""
        raw = self.tuple_base_bytes + payload_bytes
        return int(raw * self.serialization_overhead)

    def item_tuple_bytes(self, filename: str) -> int:
        """Wire size of an Item(fileID, filename, filesize, ip, port) tuple."""
        payload = self.fileid_bytes + len(filename.encode()) + self.address_bytes
        return self.tuple_bytes(payload)

    def inverted_tuple_bytes(self, keyword: str) -> int:
        """Wire size of an Inverted(keyword, fileID) tuple."""
        payload = self.fileid_bytes + len(keyword.encode())
        return self.tuple_bytes(payload)

    def inverted_cache_tuple_bytes(self, keyword: str, filename: str) -> int:
        """Wire size of an InvertedCache(keyword, fileID, fulltext) tuple."""
        payload = self.fileid_bytes + len(keyword.encode()) + len(filename.encode())
        return self.tuple_bytes(payload)

    def rehash_tuple_bytes(self) -> int:
        """Wire size of one framed posting tuple on a rehash edge.

        The distributed join ships ``(fileID, keyword-allowance)`` tuples
        with full framing and serialization; the executor, the streaming
        dataflow, and the optimizer's cost model must all use this one
        figure — a drifted copy would make the pricer mis-rank
        DISTRIBUTED_JOIN against the digest rewrites.
        """
        return self.tuple_bytes(self.fileid_bytes + 12)

    def spill_tuple_bytes(self) -> int:
        """Storage size of one join build row parked in the spill store.

        A memory-budgeted join evicts build partitions to the site-local
        DHT temp-tuple store: a serialized single-column tuple, framed
        like any stored tuple but with no routing header (the put is
        local, so spilling costs storage and re-read work — never wire
        bytes). The executor, the streaming dataflow, and the optimizer's
        memory-pressure pricer must all charge this one figure.
        """
        return self.tuple_bytes(self.fileid_bytes)

    def digest_bytes(self, entry_count: int) -> int:
        """Wire size of a packed fileID digest carrying ``entry_count`` keys.

        The semi-join/Bloom-join rewrites ship raw fileIDs back to back —
        no per-tuple framing and no self-describing serialization (the
        overhead the paper says could "in principle be eliminated"; a
        packed binary digest eliminates it). This is why a digest entry
        costs ~26x less than the same entry as a framed posting tuple.
        """
        return entry_count * self.fileid_bytes

    def message_bytes(self, payload_bytes: int) -> int:
        """One DHT message carrying ``payload_bytes``."""
        return self.header_bytes + payload_bytes

    def routed_bytes(self, payload_bytes: int, hops: int) -> int:
        """Node-level cost of routing a payload over ``hops`` overlay hops.

        The paper reports *per-node* bandwidth (what one publisher's NIC
        sees): the payload leaves the node once; intermediate hops add
        routing headers but are other nodes' traffic. We therefore charge
        the payload once plus one header per hop.
        """
        return payload_bytes + self.header_bytes * max(1, hops)


DEFAULT_COST_MODEL = CostModel()


@dataclass
class BandwidthMeter:
    """Mutable accumulator for message/byte accounting during a run."""

    messages: int = 0
    bytes: int = 0
    by_category: dict[str, MessageCost] = field(default_factory=dict)

    def charge(self, category: str, messages: int, byte_count: int) -> None:
        self.messages += messages
        self.bytes += byte_count
        previous = self.by_category.get(category, MessageCost(0, 0))
        self.by_category[category] = previous + MessageCost(messages, byte_count)

    def charge_cost(self, category: str, cost: MessageCost) -> None:
        self.charge(category, cost.messages, cost.bytes)

    def snapshot(self) -> MessageCost:
        return MessageCost(self.messages, self.bytes)

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.by_category.clear()
